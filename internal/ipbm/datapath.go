package ipbm

import (
	"fmt"
	"sync"

	"ipsa/internal/dataplane"
	"ipsa/internal/flowstat"
	"ipsa/internal/netio"
	"ipsa/internal/pkt"
	"ipsa/internal/tsp"
)

// NewPacket wraps raw bytes in a caller-owned packet sized for the
// installed design's metadata area and stamps istd.in_port.
func (s *Switch) NewPacket(data []byte, inPort int) (*pkt.Packet, error) {
	d := s.dp.Design()
	if d == nil {
		return nil, fmt.Errorf("ipbm: no configuration installed")
	}
	return d.NewPacket(data, inPort)
}

// run executes the synchronous lifecycle on an already-built packet:
// telemetry begin, full pipeline, punt, out-port surfacing, telemetry
// finish. It reports whether the packet survived the pipeline.
func (s *Switch) run(d *dataplane.Design, p *pkt.Packet, env *tsp.Env) bool {
	s.dp.BeginPacket(p)
	env.Trace = p.Trace
	env.Timed = p.Timed
	ok := s.pl.Process(p, d.Parser, s, env)
	if p.ToCPU {
		s.punt(p)
	}
	if ok {
		// The executor sets istd.out_port; surface it on the packet.
		dataplane.SurfaceOutPort(p)
		// INT sink: at the egress boundary, strip + decode the trailer so
		// it never leaves the switch. One atomic load when INT is off.
		if sink := s.intSinkP.Load(); sink != nil && !p.Drop {
			sink.process(p)
		}
	}
	s.dp.FinishPacket(p, dataplane.Verdict(p, ok, s.ports.Len()))
	return ok
}

// ProcessPacket pushes one raw frame through the pipeline and returns the
// resulting packet. Survivors have OutPort set from istd.out_port; ToCPU
// packets are additionally cloned onto the punt queue. The returned
// packet is caller-owned (not pooled) so it can be inspected freely.
func (s *Switch) ProcessPacket(data []byte, inPort int) (*pkt.Packet, error) {
	if v := s.epochs.pin(); v != nil {
		defer v.unpin()
		p, err := v.design.NewPacket(data, inPort)
		if err != nil {
			return nil, err
		}
		fl, now := s.flowTouch(p, data, inPort)
		env := s.dp.GetEnv(v.design)
		ok := s.runEpoch(v, p, env)
		s.dp.PutEnv(env)
		s.flowFinish(fl, p, ok, now)
		return p, nil
	}
	d := s.dp.Design()
	if d == nil {
		return nil, fmt.Errorf("ipbm: no configuration installed")
	}
	p, err := d.NewPacket(data, inPort)
	if err != nil {
		return nil, err
	}
	fl, now := s.flowTouch(p, data, inPort)
	env := s.dp.GetEnv(d)
	ok := s.run(d, p, env)
	s.dp.PutEnv(env)
	s.flowFinish(fl, p, ok, now)
	return p, nil
}

// flowTouch accounts a synchronous-path packet on its ingress port's
// flow lane (the per-port runner goroutines give each lane a single
// writer, the same discipline the shard workers get for free). Call it
// after the packet is built and before the pipeline rewrites data.
func (s *Switch) flowTouch(p *pkt.Packet, data []byte, inPort int) (*flowstat.Table, int64) {
	fl := s.flows.Lane(inPort)
	if fl == nil {
		return nil, 0
	}
	p.RSS = pkt.RSSHash(data)
	now := flowstat.Now()
	fl.Touch(p.RSS, data, len(data), now)
	return fl, now
}

// flowFinish records the final verdict (and sampled latency) after a
// synchronous run.
func (s *Switch) flowFinish(fl *flowstat.Table, p *pkt.Packet, ok bool, now int64) {
	if fl == nil {
		return
	}
	lat := int64(-1)
	if p.Timed {
		lat = flowstat.Now() - now
	}
	fl.Finish(p.RSS, flowstat.VerdictOf(dataplane.Verdict(p, ok, s.ports.Len())), lat, now)
}

// Forward processes a frame and transmits the survivor on its output
// port. It reports whether the packet left the switch. This is the
// steady-state path: packet and Env come from the dataplane pools, so a
// forwarded packet costs zero heap allocations.
func (s *Switch) Forward(data []byte, inPort int) (bool, error) {
	// Pin the program version before sizing the packet so metadata and
	// header-vector shapes always match the stages that will execute.
	// A nil pin means drain mode (or nothing installed): legacy path.
	v := s.epochs.pin()
	var d *dataplane.Design
	if v != nil {
		d = v.design
	} else if d = s.dp.Design(); d == nil {
		return false, fmt.Errorf("ipbm: no configuration installed")
	}
	p, err := s.dp.GetPacket(d, data, inPort)
	if err != nil {
		if v != nil {
			v.unpin()
		}
		s.admitFailed(0, inPort, data)
		return false, err
	}
	fl, now := s.flowTouch(p, data, inPort)
	env := s.dp.GetEnv(d)
	var ok bool
	if v != nil {
		ok = s.runEpoch(v, p, env)
		v.unpin()
	} else {
		ok = s.run(d, p, env)
	}
	s.dp.PutEnv(env)
	s.flowFinish(fl, p, ok, now)
	defer s.dp.PutPacket(p)
	if p.Drop {
		return false, nil
	}
	if p.OutPort < 0 || p.OutPort >= s.ports.Len() {
		s.tel.noPortDrops.Inc()
		return false, nil
	}
	port, err := s.ports.Port(p.OutPort)
	if err != nil {
		return false, err
	}
	sent := port.Send(p.Data)
	if !sent {
		s.txFailed(p)
	}
	return sent, nil
}

// batchPool recycles ForwardBatch's packet-slice scratch so the batch
// path stays allocation-free at steady state regardless of which
// goroutine drives it.
var batchPool = sync.Pool{New: func() any {
	s := make([]*pkt.Packet, 0, DefaultBatch)
	return &s
}}

// ForwardBatch processes a batch of frames from one ingress port and
// transmits the survivors, returning how many left the switch. It is the
// batch-at-a-time analogue of Forward: the program version is pinned
// once, the Env is bound once, the flow clock is read once, and the
// pipeline executes stage-major — every packet passes through one stage
// before any packet advances — so fused stage closures, key plans and
// match-table buckets stay cache-hot across the batch and the per-packet
// bookkeeping amortizes. Each frame must be a distinct buffer (packets
// alias their frames while in flight). On drain-mode switches (no
// published version) it degrades to per-frame Forward calls.
func (s *Switch) ForwardBatch(frames [][]byte, inPort int) (int, error) {
	if len(frames) == 0 {
		return 0, nil
	}
	v := s.epochs.pin()
	if v == nil {
		sent := 0
		for _, data := range frames {
			ok, err := s.Forward(data, inPort)
			if err != nil {
				return sent, err
			}
			if ok {
				sent++
			}
		}
		return sent, nil
	}
	defer v.unpin()
	d := v.design
	psp := batchPool.Get().(*[]*pkt.Packet)
	ps := (*psp)[:0]
	fl := s.flows.Lane(inPort)
	var now int64
	if fl != nil {
		now = flowstat.Now()
	}
	var firstErr error
	for _, data := range frames {
		p, err := s.dp.GetPacket(d, data, inPort)
		if err != nil {
			// Process the frames already admitted, then report the error.
			s.admitFailed(0, inPort, data)
			firstErr = err
			break
		}
		s.dp.BeginPacket(p)
		if p.Trace != nil {
			p.Trace.Epoch = v.epoch
		}
		if fl != nil {
			p.RSS = pkt.RSSHash(data)
			fl.Touch(p.RSS, data, len(data), now)
			if p.Timed {
				p.FlowNanos = now
			}
		}
		ps = append(ps, p)
	}
	env := s.dp.GetEnv(d)
	v.runIngressBatch(s.pl, ps, env)
	// TM boundary: dispose ingress drops and pass-through rejects so the
	// egress sweep sees only live packets.
	for i, p := range ps {
		if p.Drop {
			s.disposeBatchPkt(v, p, fl, false, now)
			ps[i] = nil
			continue
		}
		if !s.pl.TM().PassThrough(p) {
			s.pl.CountDropped(int(env.Lane))
			s.disposeBatchPkt(v, p, fl, false, now)
			ps[i] = nil
		}
	}
	v.runEgressBatch(s.pl, ps, env)
	s.dp.PutEnv(env)
	sent := 0
	for i, p := range ps {
		if p == nil {
			continue
		}
		if s.disposeBatchPkt(v, p, fl, !p.Drop, now) {
			sent++
		}
		ps[i] = nil
	}
	*psp = ps[:0]
	batchPool.Put(psp)
	return sent, firstErr
}

// disposeBatchPkt finishes one batch packet after its pipeline verdict —
// punt, out-port surfacing, INT sink, telemetry finish, flow accounting,
// transmit, freelist return — mirroring runEpoch's tail plus Forward's
// transmit step. It reports whether the frame was transmitted.
func (s *Switch) disposeBatchPkt(v *progVersion, p *pkt.Packet, fl *flowstat.Table, ok bool, now int64) bool {
	if p.ToCPU {
		s.punt(p)
	}
	if ok {
		dataplane.SurfaceOutPort(p)
		if v.sink != nil && !p.Drop {
			v.sink.process(p)
		}
	}
	verdict := dataplane.Verdict(p, ok, s.ports.Len())
	s.dp.FinishPacket(p, verdict)
	if fl != nil {
		lat := int64(-1)
		if p.Timed {
			lat = flowstat.Now() - now
		}
		fl.Finish(p.RSS, flowstat.VerdictOf(verdict), lat, now)
	}
	sent := false
	if ok && !p.Drop {
		if p.OutPort >= 0 && p.OutPort < s.ports.Len() {
			if port, err := s.ports.Port(p.OutPort); err == nil {
				if sent = port.Send(p.Data); !sent {
					s.txFailed(p)
				}
			}
		} else {
			s.tel.noPortDrops.Inc()
		}
	}
	s.dp.PutPacket(p)
	return sent
}

func (s *Switch) punt(p *pkt.Packet) {
	select {
	case s.toCPU <- p.Clone():
		s.punted.Add(1)
	default:
		// Punt queue full: drop the notification, never the data path.
	}
}

// PuntQueue exposes the to-CPU channel (flow-probe notifications etc.).
func (s *Switch) PuntQueue() <-chan *pkt.Packet { return s.toCPU }

// Run starts one forwarding goroutine per port, each pulling frames from
// the port's ingress and forwarding them. Stop with Shutdown.
func (s *Switch) Run() {
	s.health.Start()
	for i := 0; i < s.ports.Len(); i++ {
		port, _ := s.ports.Port(i)
		s.runWG.Add(1)
		go func(idx int, p netio.Port) {
			defer s.runWG.Done()
			for {
				data, ok := p.Recv()
				if !ok {
					return
				}
				if s.stopped.Load() {
					return
				}
				if _, err := s.Forward(data, idx); err != nil {
					return
				}
			}
		}(i, port)
	}
}

// Shutdown stops the forwarding goroutines and closes the ports. Egress
// workers parked on the TM notification are woken so they can observe
// the stop flag; sharded workers stop when the port readers exit and
// their input queues drain and close.
func (s *Switch) Shutdown() {
	if s.stopped.CompareAndSwap(false, true) {
		s.health.Stop()
		s.ports.Close()
		s.pl.TM().WakeAll()
		s.runWG.Wait()
		// All lane writers have exited: export every live flow so the
		// record stream accounts for the switch's entire lifetime.
		s.flows.FlushAll()
	}
}

// Faults exposes executor fault counters.
func (s *Switch) Faults() *tsp.Faults { return s.dp.Faults() }
