package ipbm

import (
	"fmt"

	"ipsa/internal/pkt"
	"ipsa/internal/template"
	"ipsa/internal/tsp"
)

// NewPacket wraps raw bytes in a packet sized for the installed design's
// metadata area and stamps istd.in_port.
func (s *Switch) NewPacket(data []byte, inPort int) (*pkt.Packet, error) {
	s.mu.RLock()
	cfg := s.cfg
	s.mu.RUnlock()
	if cfg == nil {
		return nil, fmt.Errorf("ipbm: no configuration installed")
	}
	p := pkt.NewPacket(data, cfg.MetaBytes)
	p.InPort = inPort
	if err := p.SetMetaBits(template.IstdInPortOff, template.IstdInPortWidth, uint64(inPort)); err != nil {
		return nil, err
	}
	return p, nil
}

// ProcessPacket pushes one raw frame through the pipeline and returns the
// resulting packet. Survivors have OutPort set from istd.out_port; ToCPU
// packets are additionally cloned onto the punt queue.
func (s *Switch) ProcessPacket(data []byte, inPort int) (*pkt.Packet, error) {
	s.mu.RLock()
	cfg := s.cfg
	parser := s.parser
	env := &tsp.Env{Regs: s.regs, Faults: &s.faults, SRHID: s.srhID, IPv6ID: s.ipv6ID}
	s.mu.RUnlock()
	if cfg == nil {
		return nil, fmt.Errorf("ipbm: no configuration installed")
	}
	p := pkt.NewPacket(data, cfg.MetaBytes)
	p.InPort = inPort
	if err := p.SetMetaBits(template.IstdInPortOff, template.IstdInPortWidth, uint64(inPort)); err != nil {
		return nil, err
	}
	s.beginPacketTelemetry(p)
	env.Trace = p.Trace
	env.Timed = p.Timed
	ok := s.pl.Process(p, parser, s, env)
	if p.ToCPU {
		s.punt(p)
	}
	if ok {
		// The executor sets istd.out_port; surface it on the packet.
		out, err := p.MetaBits(template.IstdOutPortOff, template.IstdOutPortWidth)
		if err == nil {
			p.OutPort = int(out)
		}
	}
	s.finishPacketTelemetry(p, verdictOf(p, ok, s.ports.Len()))
	return p, nil
}

// Forward processes a frame and transmits the survivor on its output
// port. It reports whether the packet left the switch.
func (s *Switch) Forward(data []byte, inPort int) (bool, error) {
	p, err := s.ProcessPacket(data, inPort)
	if err != nil {
		return false, err
	}
	if p.Drop {
		return false, nil
	}
	if p.OutPort < 0 || p.OutPort >= s.ports.Len() {
		s.tel.noPortDrops.Inc()
		return false, nil
	}
	port, err := s.ports.Port(p.OutPort)
	if err != nil {
		return false, err
	}
	return port.Send(p.Data), nil
}

func (s *Switch) punt(p *pkt.Packet) {
	select {
	case s.toCPU <- p.Clone():
		s.punted.Add(1)
	default:
		// Punt queue full: drop the notification, never the data path.
	}
}

// PuntQueue exposes the to-CPU channel (flow-probe notifications etc.).
func (s *Switch) PuntQueue() <-chan *pkt.Packet { return s.toCPU }

// Run starts one forwarding goroutine per port, each pulling frames from
// the port's ingress and forwarding them. Stop with Shutdown.
func (s *Switch) Run() {
	for i := 0; i < s.ports.Len(); i++ {
		port, _ := s.ports.Port(i)
		s.runWG.Add(1)
		go func(idx int, p interface {
			Recv() ([]byte, bool)
		}) {
			defer s.runWG.Done()
			for {
				data, ok := p.Recv()
				if !ok {
					return
				}
				if s.stopped.Load() {
					return
				}
				if _, err := s.Forward(data, idx); err != nil {
					return
				}
			}
		}(i, port)
	}
}

// Shutdown stops the forwarding goroutines and closes the ports.
func (s *Switch) Shutdown() {
	if s.stopped.CompareAndSwap(false, true) {
		s.ports.Close()
		s.runWG.Wait()
	}
}

// Faults exposes interpreter fault counters.
func (s *Switch) Faults() *tsp.Faults { return &s.faults }
