package ipbm

// edit.go is the edit-script layer of partial reconfiguration: instead
// of shipping a whole configuration, the controller opens a transaction
// (EditBegin), applies per-stage and per-table mutations against a
// private clone of the running config, and commits — publishing the
// accumulated script as one reconfiguration. On the hitless path a
// commit is an epoch publish where structural hashing reuses every
// compiled stage the script didn't touch, so a one-table patch
// recompiles one stage, not the pipeline.

import (
	"encoding/json"
	"fmt"
	"time"

	"ipsa/internal/ctrlplane"
	"ipsa/internal/telemetry"
	"ipsa/internal/template"
)

// editSession is an open edit transaction: a deep clone of the running
// configuration that ops mutate until commit or abort.
type editSession struct {
	pending *template.Config
	ops     int
}

// cloneConfig deep-copies a configuration through its serialized form,
// so edit ops can never alias the installed config. It uses compact
// JSON and skips validation — the source is the running config, which
// validated when it was applied; EditCommit validates the mutated clone.
func cloneConfig(cfg *template.Config) (*template.Config, error) {
	b, err := json.Marshal(cfg)
	if err != nil {
		return nil, err
	}
	var c template.Config
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, err
	}
	return &c, nil
}

// EditBegin opens an edit transaction against the running
// configuration. Only one transaction may be open at a time.
func (s *Switch) EditBegin() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.edit != nil {
		return fmt.Errorf("ipbm: edit transaction already open (%d ops pending)", s.edit.ops)
	}
	d := s.dp.Design()
	if d == nil {
		return fmt.Errorf("ipbm: no configuration installed to edit")
	}
	pending, err := cloneConfig(d.Cfg)
	if err != nil {
		return fmt.Errorf("ipbm: clone running config: %w", err)
	}
	// A commit is always a semantic diff of the edited config, never a
	// replay of the old patch manifest.
	pending.Patch = nil
	s.edit = &editSession{pending: pending}
	return nil
}

// EditApply applies one edit op to the open transaction's pending
// configuration. Structural errors (unknown stage, missing spec) fail
// the op and leave the transaction open; semantic validation happens at
// commit.
func (s *Switch) EditApply(op ctrlplane.EditOp) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.edit == nil {
		return fmt.Errorf("ipbm: no edit transaction open")
	}
	cfg := s.edit.pending
	switch op.Kind {
	case "set_stage":
		if op.Stage == "" || op.Spec == nil {
			return fmt.Errorf("ipbm: set_stage needs a stage name and spec")
		}
		for name, act := range op.Actions {
			cfg.Actions[name] = act
		}
		_, existed := cfg.Stages[op.Stage]
		cfg.Stages[op.Stage] = op.Spec
		if !existed {
			chain := &cfg.IngressChain
			if op.Egress {
				chain = &cfg.EgressChain
			}
			pos := op.Position
			if pos < 0 || pos > len(*chain) {
				pos = len(*chain)
			}
			*chain = append(*chain, "")
			copy((*chain)[pos+1:], (*chain)[pos:])
			(*chain)[pos] = op.Stage
			cfg.TSPAssignment[op.Stage] = op.TSP
		}
	case "delete_stage":
		if _, ok := cfg.Stages[op.Stage]; !ok {
			return fmt.Errorf("ipbm: delete_stage: no stage %q", op.Stage)
		}
		delete(cfg.Stages, op.Stage)
		delete(cfg.TSPAssignment, op.Stage)
		cfg.IngressChain = removeString(cfg.IngressChain, op.Stage)
		cfg.EgressChain = removeString(cfg.EgressChain, op.Stage)
	case "set_table":
		if op.Table == "" || op.TableSpec == nil {
			return fmt.Errorf("ipbm: set_table needs a table name and spec")
		}
		cfg.Tables[op.Table] = op.TableSpec
	case "delete_table":
		if _, ok := cfg.Tables[op.Table]; !ok {
			return fmt.Errorf("ipbm: delete_table: no table %q", op.Table)
		}
		delete(cfg.Tables, op.Table)
	default:
		return fmt.Errorf("ipbm: unknown edit op %q", op.Kind)
	}
	s.edit.ops++
	return nil
}

// EditCommit validates the pending configuration and publishes it as
// one reconfiguration (hitless epoch publish unless the switch runs in
// DrainReconfig mode). On failure the transaction stays open so the
// caller can add corrective ops or abort.
func (s *Switch) EditCommit() (*ctrlplane.EditStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.edit == nil {
		return nil, fmt.Errorf("ipbm: no edit transaction open")
	}
	cfg, ops := s.edit.pending, s.edit.ops
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("ipbm: edit script does not validate: %w", err)
	}
	stats, err := s.applyLocked(cfg, time.Now())
	if err != nil {
		return nil, err
	}
	s.edit = nil
	s.tel.Events.Append(telemetry.Event{
		Kind:             "edit_commit",
		ConfigHash:       configHash(cfg),
		Detail:           fmt.Sprintf("%d ops", ops),
		TSPsWritten:      stats.TSPsWritten,
		TablesCreated:    stats.TablesCreated,
		TablesDropped:    stats.TablesDropped,
		Hitless:          stats.Hitless,
		Epoch:            stats.Epoch,
		StagesRecompiled: stats.StagesRecompiled,
		StagesReused:     stats.StagesReused,
	})
	return &ctrlplane.EditStats{Ops: ops, Apply: stats}, nil
}

// EditAbort discards the open transaction.
func (s *Switch) EditAbort() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.edit == nil {
		return fmt.Errorf("ipbm: no edit transaction open")
	}
	ops := s.edit.ops
	s.edit = nil
	s.tel.Events.Append(telemetry.Event{
		Kind:   "edit_abort",
		Detail: fmt.Sprintf("%d ops discarded", ops),
	})
	return nil
}

func removeString(ss []string, drop string) []string {
	out := ss[:0]
	for _, s := range ss {
		if s != drop {
			out = append(out, s)
		}
	}
	return out
}
