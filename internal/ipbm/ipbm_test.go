package ipbm

import (
	"os"
	"path/filepath"
	"testing"

	"ipsa/internal/compiler/backend"
	"ipsa/internal/ctrlplane"
	"ipsa/internal/pkt"
	"ipsa/internal/rp4/parser"
	"ipsa/internal/template"
)

// Test topology constants for the base L2/L3 design.
const (
	inPort    = 1
	outPort   = 3
	iifIndex  = 10
	bridgeIn  = 100
	bridgeOut = 200
	vrfID     = 1
	nexthopID = 7
)

var (
	routerMAC = pkt.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}
	hostMAC   = pkt.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x02}
	nhMAC     = pkt.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x03}
	smacMAC   = pkt.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x04}
)

func compilerOpts() backend.Options {
	opts := backend.DefaultOptions()
	opts.NumTSPs = 16 // match the software switch
	return opts
}

func newBaseWorkspace(t testing.TB) *backend.Workspace {
	t.Helper()
	src, err := os.ReadFile("../../testdata/base_l2l3.rp4")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parser.Parse("base_l2l3.rp4", string(src))
	if err != nil {
		t.Fatal(err)
	}
	w, err := backend.NewWorkspace(prog, compilerOpts())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func loader(t testing.TB) backend.Loader {
	t.Helper()
	return func(name string) (string, error) {
		b, err := os.ReadFile(filepath.Join("../../testdata", name))
		return string(b), err
	}
}

func script(t testing.TB, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("../../testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// newBaseSwitch compiles, installs and populates the base design.
func newBaseSwitch(t testing.TB) (*Switch, *backend.Workspace) {
	t.Helper()
	return newBaseSwitchOpts(t, nil)
}

// newBaseSwitchOpts is newBaseSwitch with an options hook (e.g. forcing
// the DrainReconfig fallback).
func newBaseSwitchOpts(t testing.TB, tweak func(*Options)) (*Switch, *backend.Workspace) {
	t.Helper()
	w := newBaseWorkspace(t)
	opts := DefaultOptions()
	if tweak != nil {
		tweak(&opts)
	}
	sw, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sw.ApplyConfig(w.Current().Config)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Full || st.TablesCreated != 10 {
		t.Fatalf("initial apply: %+v", st)
	}
	populateBase(t, sw)
	return sw, w
}

func insert(t testing.TB, sw *Switch, req ctrlplane.EntryReq) int {
	t.Helper()
	h, err := sw.InsertEntry(req)
	if err != nil {
		t.Fatalf("insert into %s: %v", req.Table, err)
	}
	return h
}

// baseEntries is the canonical table population for the base L2/L3
// design, shared by the testing.T path (populateBase) and the fuzz-worker
// path (populateBaseErr) which has no T to fail on.
func baseEntries() []ctrlplane.EntryReq {
	v6dst := make([]byte, 16)
	v6dst[0], v6dst[15] = 0x20, 0x02
	v6pfx := make([]byte, 16)
	v6pfx[0], v6pfx[1] = 0x20, 0x01
	return []ctrlplane.EntryReq{
		{
			Table: "port_map_tbl", Keys: []ctrlplane.FieldValue{{Value: inPort}},
			Tag: 1, Params: []uint64{iifIndex},
		},
		{
			Table: "bd_vrf_tbl", Keys: []ctrlplane.FieldValue{{Value: iifIndex}},
			Tag: 1, Params: []uint64{bridgeIn, vrfID},
		},
		{
			Table: "l2_l3_tbl",
			Keys:  []ctrlplane.FieldValue{{Value: bridgeIn}, {Value: routerMAC.Uint64()}},
			Tag:   1,
		},
		{
			Table: "ipv4_host",
			Keys:  []ctrlplane.FieldValue{{Value: vrfID}, {Value: 0x0A000002}}, // 10.0.0.2
			Tag:   1, Params: []uint64{nexthopID},
		},
		{
			Table:     "ipv4_lpm",
			Keys:      []ctrlplane.FieldValue{{Value: 0x0A010000}}, // 10.1.0.0/16
			PrefixLen: 16,
			Tag:       1, Params: []uint64{nexthopID},
		},
		{
			Table: "ipv6_host",
			Keys:  []ctrlplane.FieldValue{{Value: vrfID}, {Bytes: v6dst}},
			Tag:   1, Params: []uint64{nexthopID},
		},
		{
			Table:     "ipv6_lpm",
			Keys:      []ctrlplane.FieldValue{{Bytes: v6pfx}},
			PrefixLen: 32,
			Tag:       1, Params: []uint64{nexthopID},
		},
		{
			Table: "nexthop_tbl", Keys: []ctrlplane.FieldValue{{Value: nexthopID}},
			Tag: 1, Params: []uint64{bridgeOut, nhMAC.Uint64()},
		},
		{
			Table: "smac_tbl", Keys: []ctrlplane.FieldValue{{Value: bridgeOut}},
			Tag: 1, Params: []uint64{smacMAC.Uint64()},
		},
		{
			Table: "dmac_tbl",
			Keys:  []ctrlplane.FieldValue{{Value: bridgeOut}, {Value: nhMAC.Uint64()}},
			Tag:   1, Params: []uint64{outPort},
		},
		// L2 path: same bridge as ingress, direct MAC.
		{
			Table: "dmac_tbl",
			Keys:  []ctrlplane.FieldValue{{Value: bridgeIn}, {Value: hostMAC.Uint64()}},
			Tag:   1, Params: []uint64{5},
		},
	}
}

func populateBase(t testing.TB, sw *Switch) {
	t.Helper()
	for _, req := range baseEntries() {
		insert(t, sw, req)
	}
}

func populateBaseErr(sw *Switch) error {
	for _, req := range baseEntries() {
		if _, err := sw.InsertEntry(req); err != nil {
			return err
		}
	}
	return nil
}

func v4Packet(t testing.TB, dst [4]byte, dmac pkt.MAC, ttl uint8) []byte {
	t.Helper()
	raw, err := pkt.Serialize(
		&pkt.Ethernet{Dst: dmac, Src: hostMAC, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: ttl, Protocol: pkt.IPProtoTCP, Src: [4]byte{10, 0, 0, 1}, Dst: dst},
		&pkt.TCP{SrcPort: 1234, DstPort: 80},
	)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestRoutedIPv4HostPath(t *testing.T) {
	sw, _ := newBaseSwitch(t)
	p, err := sw.ProcessPacket(v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64), inPort)
	if err != nil {
		t.Fatal(err)
	}
	if p.Drop {
		t.Fatal("packet dropped")
	}
	if p.OutPort != outPort {
		t.Errorf("out port = %d, want %d", p.OutPort, outPort)
	}
	var eth pkt.Ethernet
	if err := eth.Decode(p.Data); err != nil {
		t.Fatal(err)
	}
	if eth.Dst != nhMAC {
		t.Errorf("dmac = %v, want %v", eth.Dst, nhMAC)
	}
	if eth.Src != smacMAC {
		t.Errorf("smac = %v, want %v", eth.Src, smacMAC)
	}
	var ip pkt.IPv4
	if err := ip.Decode(p.Data[pkt.EthernetLen:]); err != nil {
		t.Fatal(err)
	}
	if ip.TTL != 63 {
		t.Errorf("ttl = %d, want 63", ip.TTL)
	}
	if sw.Faults().InvalidHeaderAccess.Load() != 0 || sw.Faults().BadTemplate.Load() != 0 {
		t.Errorf("faults: %+v", sw.Faults())
	}
}

func TestRoutedIPv4LPMPath(t *testing.T) {
	sw, _ := newBaseSwitch(t)
	p, err := sw.ProcessPacket(v4Packet(t, [4]byte{10, 1, 2, 3}, routerMAC, 64), inPort)
	if err != nil {
		t.Fatal(err)
	}
	if p.Drop || p.OutPort != outPort {
		t.Fatalf("drop=%v out=%d", p.Drop, p.OutPort)
	}
	// Host table must have missed, LPM hit.
	hostStats, _ := sw.TableStats("ipv4_host")
	lpmStats, _ := sw.TableStats("ipv4_lpm")
	if hostStats.Misses != 1 || hostStats.Hits != 0 {
		t.Errorf("host stats: %+v", hostStats)
	}
	if lpmStats.Hits != 1 {
		t.Errorf("lpm stats: %+v", lpmStats)
	}
}

func TestRoutedIPv6Path(t *testing.T) {
	sw, _ := newBaseSwitch(t)
	ip := pkt.IPv6{NextHeader: pkt.IPProtoTCP, HopLimit: 64}
	ip.Dst[0], ip.Dst[15] = 0x20, 0x02
	ip.Src[15] = 1
	raw, err := pkt.Serialize(
		&pkt.Ethernet{Dst: routerMAC, Src: hostMAC, EtherType: pkt.EtherTypeIPv6},
		&ip, &pkt.TCP{SrcPort: 9, DstPort: 10},
	)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sw.ProcessPacket(raw, inPort)
	if err != nil {
		t.Fatal(err)
	}
	if p.Drop || p.OutPort != outPort {
		t.Fatalf("drop=%v out=%d", p.Drop, p.OutPort)
	}
	var out pkt.IPv6
	if err := out.Decode(p.Data[pkt.EthernetLen:]); err != nil {
		t.Fatal(err)
	}
	if out.HopLimit != 63 {
		t.Errorf("hop limit = %d, want 63", out.HopLimit)
	}
}

func TestL2BridgedPath(t *testing.T) {
	sw, _ := newBaseSwitch(t)
	// Destination is a host MAC, not the router: pure L2 forwarding, no
	// TTL change.
	p, err := sw.ProcessPacket(v4Packet(t, [4]byte{10, 9, 9, 9}, hostMAC, 33), inPort)
	if err != nil {
		t.Fatal(err)
	}
	if p.Drop || p.OutPort != 5 {
		t.Fatalf("drop=%v out=%d, want port 5", p.Drop, p.OutPort)
	}
	var ip pkt.IPv4
	if err := ip.Decode(p.Data[pkt.EthernetLen:]); err != nil {
		t.Fatal(err)
	}
	if ip.TTL != 33 {
		t.Errorf("ttl = %d, want unchanged 33", ip.TTL)
	}
	var eth pkt.Ethernet
	_ = eth.Decode(p.Data)
	if eth.Src != hostMAC {
		t.Errorf("smac rewritten on L2 path: %v", eth.Src)
	}
}

func TestUnknownPortDropped(t *testing.T) {
	sw, _ := newBaseSwitch(t)
	p, err := sw.ProcessPacket(v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64), 6)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Drop {
		t.Error("packet from unmapped port not dropped")
	}
	_, dropped := sw.Pipeline().Stats()
	if dropped != 1 {
		t.Errorf("dropped = %d", dropped)
	}
}

func TestUnknownDMACDropped(t *testing.T) {
	sw, _ := newBaseSwitch(t)
	p, err := sw.ProcessPacket(v4Packet(t, [4]byte{10, 9, 9, 9}, pkt.MAC{9, 9, 9, 9, 9, 9}, 64), inPort)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Drop {
		t.Error("packet to unknown dmac not dropped")
	}
}

func TestUnroutableDropsAtDMAC(t *testing.T) {
	sw, _ := newBaseSwitch(t)
	// Routed lookup misses both FIBs: fib_hit stays 0, nexthop skipped,
	// dmac lookup (bridgeIn, routerMAC) misses -> drop.
	p, err := sw.ProcessPacket(v4Packet(t, [4]byte{192, 168, 0, 1}, routerMAC, 64), inPort)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Drop {
		t.Error("unroutable packet not dropped")
	}
}

func TestDeleteEntryAndNewPacket(t *testing.T) {
	sw, _ := newBaseSwitch(t)
	h := insert(t, sw, ctrlplane.EntryReq{
		Table: "ipv4_host",
		Keys:  []ctrlplane.FieldValue{{Value: vrfID}, {Value: 0x0A00FFFF}},
		Tag:   1, Params: []uint64{nexthopID},
	})
	if err := sw.DeleteEntry("ipv4_host", h); err != nil {
		t.Fatal(err)
	}
	if err := sw.DeleteEntry("ipv4_host", h); err == nil {
		t.Error("double delete accepted")
	}
	if err := sw.DeleteEntry("ghost", 0); err == nil {
		t.Error("unknown table delete accepted")
	}
	// NewPacket stamps istd.in_port and sizes metadata for the design.
	p, err := sw.NewPacket([]byte{1, 2, 3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.MetaBits(template.IstdInPortOff, template.IstdInPortWidth)
	if err != nil || v != 5 {
		t.Fatalf("in_port = %d, %v", v, err)
	}
	if len(p.Meta) != sw.Config().MetaBytes {
		t.Errorf("meta bytes = %d", len(p.Meta))
	}
	// No config -> error.
	fresh, _ := New(DefaultOptions())
	if _, err := fresh.NewPacket([]byte{1}, 0); err == nil {
		t.Error("NewPacket without config accepted")
	}
	if _, err := fresh.ProcessPacket([]byte{1}, 0); err == nil {
		t.Error("ProcessPacket without config accepted")
	}
}
