package ipbm

import (
	"bytes"
	"testing"
	"time"

	"ipsa/internal/ctrlplane"
	"ipsa/internal/netio"
	"ipsa/internal/pkt"
)

// TestFunctionUpdateFlow exercises the update case the paper mentions but
// does not show: replacing a running function with a new version (here the
// probe gains a second threshold tier) by offloading and reloading in one
// script. Register state is preserved because the register is not removed.
func TestFunctionUpdateFlow(t *testing.T) {
	sw, w := newBaseSwitch(t)
	rep, err := w.ApplyScript(script(t, "flowprobe.script"), loader(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.ApplyConfig(rep.Config); err != nil {
		t.Fatal(err)
	}
	insert(t, sw, ctrlplane.EntryReq{
		Table: "flow_probe",
		Keys:  []ctrlplane.FieldValue{{Value: 0x0A000001}, {Value: 0x0A000002}},
		Tag:   1, Params: []uint64{3, 100},
	})
	for i := 0; i < 2; i++ {
		if _, err := sw.ProcessPacket(v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64), inPort); err != nil {
			t.Fatal(err)
		}
	}

	// Version 2 of the probe: same register, new table with a low/high
	// threshold pair (drop above high, punt above low).
	v2 := `
structs {
    struct probe2_meta {
        bit<32> cnt;
    } p2;
}

action probe2(bit<32> idx, bit<32> punt_at, bit<32> drop_at) {
    p2.cnt = flow_cnt.read(idx);
    p2.cnt = p2.cnt + 1;
    flow_cnt.write(idx, p2.cnt);
    if (p2.cnt > drop_at) {
        drop();
    } else if (p2.cnt > punt_at) {
        to_cpu();
    }
}

table flow_probe2 {
    key = {
        ipv4.src_addr: exact;
        ipv4.dst_addr: exact;
    }
    actions = { probe2; }
    size = 1024;
}

stage probe2_stage {
    parser { ipv4 };
    matcher {
        if (ipv4.isValid()) flow_probe2.apply();
        else;
    };
    executor {
        1: probe2;
        default: NoAction;
    };
}

user_funcs {
    func probe2fn { probe2_stage }
}
`
	// Unloading the old probe also removes its links, leaving the gap the
	// new version's links fill.
	update := `
unload probe
load probe_v2.rp4 --func_name probe2fn
add_link ipv4_lpm_fib probe2_stage
add_link probe2_stage ipv6_host_fib
`
	ld := func(name string) (string, error) {
		if name == "probe_v2.rp4" {
			return v2, nil
		}
		return loader(t)(name)
	}
	rep2, err := w.ApplyScript(update, ld)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.RemovedStages) != 1 || rep2.RemovedStages[0] != "probe_stage" {
		t.Fatalf("removed: %v", rep2.RemovedStages)
	}
	if len(rep2.AddedStages) != 1 || rep2.AddedStages[0] != "probe2_stage" {
		t.Fatalf("added: %v", rep2.AddedStages)
	}
	if _, err := sw.ApplyConfig(rep2.Config); err != nil {
		t.Fatal(err)
	}
	insert(t, sw, ctrlplane.EntryReq{
		Table: "flow_probe2",
		Keys:  []ctrlplane.FieldValue{{Value: 0x0A000001}, {Value: 0x0A000002}},
		Tag:   1, Params: []uint64{3, 3, 5}, // same slot, punt >3, drop >5
	})
	// The count continues from the preserved register (2 so far).
	results := []struct {
		punt, drop bool
	}{
		{false, false}, // 3
		{true, false},  // 4
		{true, false},  // 5
		{false, true},  // 6: dropped
		{false, true},  // 7
	}
	for i, want := range results {
		p, err := sw.ProcessPacket(v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64), inPort)
		if err != nil {
			t.Fatal(err)
		}
		if p.ToCPU != want.punt || p.Drop != want.drop {
			cnt, _ := sw.ReadRegister("flow_cnt", 3)
			t.Errorf("packet %d: punt=%v drop=%v, want %+v (cnt=%d)", i, p.ToCPU, p.Drop, want, cnt)
		}
	}
	cnt, err := sw.ReadRegister("flow_cnt", 3)
	if err != nil {
		t.Fatal(err)
	}
	if cnt != 7 {
		t.Errorf("flow_cnt = %d, want 7 (2 from v1 + 5 from v2)", cnt)
	}
}

// TestPcapReplayThroughSwitch replays a generated pcap file through the
// data plane and captures the forwarded packets into another pcap —
// the offline workflow of the CM.
func TestPcapReplayThroughSwitch(t *testing.T) {
	sw, _ := newBaseSwitch(t)
	// Build a capture of 10 routable and 3 unroutable packets.
	var capture bytes.Buffer
	wr, err := netio.NewPcapWriter(&capture)
	if err != nil {
		t.Fatal(err)
	}
	ts := time.Unix(1700000000, 0)
	for i := 0; i < 10; i++ {
		if err := wr.WritePacket(ts, v4Packet(t, [4]byte{10, 1, 0, byte(i)}, routerMAC, 64)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := wr.WritePacket(ts, v4Packet(t, [4]byte{192, 168, 0, byte(i)}, routerMAC, 64)); err != nil {
			t.Fatal(err)
		}
	}
	// Replay.
	rd, err := netio.NewPcapReader(bytes.NewReader(capture.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	ow, err := netio.NewPcapWriter(&out)
	if err != nil {
		t.Fatal(err)
	}
	forwarded, dropped := 0, 0
	for {
		when, data, err := rd.ReadPacket()
		if err != nil {
			break
		}
		p, err := sw.ProcessPacket(data, inPort)
		if err != nil {
			t.Fatal(err)
		}
		if p.Drop {
			dropped++
			continue
		}
		forwarded++
		if err := ow.WritePacket(when, p.Data); err != nil {
			t.Fatal(err)
		}
	}
	if forwarded != 10 || dropped != 3 {
		t.Fatalf("forwarded %d dropped %d", forwarded, dropped)
	}
	// The output capture holds rewritten packets.
	or, err := netio.NewPcapReader(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	_, first, err := or.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	var eth pkt.Ethernet
	_ = eth.Decode(first)
	if eth.Dst != nhMAC {
		t.Errorf("captured dmac %v, want %v", eth.Dst, nhMAC)
	}
}

// TestControlChannelEndToEnd drives a live switch through the real CCM
// TCP protocol: apply base config, populate, update to ECMP, verify over
// the wire — the three-process deployment in one test.
func TestControlChannelEndToEnd(t *testing.T) {
	w := newBaseWorkspace(t)
	sw, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	srv := ctrlplane.NewServer(sw, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := ctrlplane.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Install the base design over TCP (the config survives JSON).
	st, err := cl.ApplyConfig(w.Current().Config)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Full {
		t.Error("first apply not full")
	}
	// Populate over the wire.
	if _, err := cl.InsertEntry(ctrlplane.EntryReq{
		Table: "port_map_tbl", Keys: []ctrlplane.FieldValue{{Value: inPort}},
		Tag: 1, Params: []uint64{iifIndex},
	}); err != nil {
		t.Fatal(err)
	}
	populateBase(t, sw) // rest in-process for brevity
	// In-situ update over the wire, patch manifest included.
	rep, err := w.ApplyScript(script(t, "ecmp.script"), loader(t))
	if err != nil {
		t.Fatal(err)
	}
	st2, err := cl.ApplyConfig(rep.Config)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Full || st2.TSPsWritten != len(rep.RewrittenTSPs) {
		t.Errorf("patch over TCP: %+v (want %d TSPs)", st2, len(rep.RewrittenTSPs))
	}
	if err := cl.AddMember(ctrlplane.MemberReq{
		Table: "ecmp_ipv4", Group: ctrlplane.FieldValue{Value: nexthopID},
		Tag: 1, Params: []uint64{bridgeOut, nhMAC.Uint64()},
	}); err != nil {
		t.Fatal(err)
	}
	p, err := sw.ProcessPacket(v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64), inPort)
	if err != nil || p.Drop {
		t.Fatalf("traffic after TCP-driven update: err=%v drop=%v", err, p.Drop)
	}
	// Stats readable over the wire.
	ds, err := cl.Stats()
	if err != nil || ds.Processed == 0 {
		t.Fatalf("device stats: %+v, %v", ds, err)
	}
	ts, err := cl.TableStats("ipv4_host")
	if err != nil || ts.Hits+ts.Misses == 0 {
		t.Fatalf("table stats: %+v, %v", ts, err)
	}
}
