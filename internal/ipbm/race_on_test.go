//go:build race

package ipbm

// raceEnabled lets allocation-exactness tests skip under the race
// detector, whose instrumentation allocates on the measured path.
const raceEnabled = true
