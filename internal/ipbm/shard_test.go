package ipbm

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"ipsa/internal/ctrlplane"
	"ipsa/internal/pipeline"
	"ipsa/internal/pkt"
)

// flowPacket builds a routable v4/TCP frame whose flow identity is the
// TCP source port and whose per-flow sequence number rides in the TCP
// sequence field — both untouched by the L3 rewrite, so egress frames
// still carry them for ordering checks.
func flowPacket(t testing.TB, flow uint16, seq uint32) []byte {
	t.Helper()
	raw, err := pkt.Serialize(
		&pkt.Ethernet{Dst: routerMAC, Src: hostMAC, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoTCP, Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 1, 0, 1}},
		&pkt.TCP{SrcPort: flow, DstPort: 80, Seq: seq},
	)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestShardedModeForwards runs the sharded mode end to end: packets
// injected at the ingress port are steered by flow hash across shard
// workers and emerge, rewritten, at the egress port.
func TestShardedModeForwards(t *testing.T) {
	sw, _ := newBaseSwitch(t)
	if err := sw.RunSharded(2, 4); err != nil {
		t.Fatal(err)
	}
	defer sw.Shutdown()
	if nsh, nb := sw.Sharded(); nsh != 2 || nb != 4 {
		t.Fatalf("Sharded() = %d,%d", nsh, nb)
	}
	in, err := sw.Ports().Port(inPort)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sw.Ports().Port(outPort)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			for !in.Inject(v4Packet(t, [4]byte{10, 1, 0, byte(i)}, routerMAC, 64)) {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	got := 0
	deadline := time.After(5 * time.Second)
	for got < n {
		if d, ok := out.Drain(); ok {
			var ip pkt.IPv4
			if err := ip.Decode(d[pkt.EthernetLen:]); err != nil {
				t.Fatal(err)
			}
			if ip.TTL != 63 {
				t.Fatalf("ttl = %d", ip.TTL)
			}
			got++
			continue
		}
		select {
		case <-deadline:
			enq, drops := sw.TMStats()
			t.Fatalf("only %d/%d packets emerged (tm enq=%d drops=%d)", got, n, enq, drops)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if f := sw.Faults(); f.BadTemplate.Load() != 0 {
		t.Errorf("faults: %d", f.BadTemplate.Load())
	}
}

// TestShardedModeErrors: misconfiguration is rejected up front.
func TestShardedModeErrors(t *testing.T) {
	sw, _ := New(DefaultOptions())
	if err := sw.RunSharded(2, 0); err == nil {
		t.Error("unconfigured sharded run accepted")
	}
	cfgd, _ := newBaseSwitch(t)
	if err := cfgd.RunSharded(0, 0); err == nil {
		t.Error("zero shards accepted")
	}
	if err := cfgd.RunSharded(MaxShards+1, 0); err == nil {
		t.Error("shard count above MaxShards accepted")
	}
	if err := cfgd.RunSharded(2, 4); err != nil {
		t.Fatal(err)
	}
	defer cfgd.Shutdown()
	if err := cfgd.RunSharded(2, 4); err == nil {
		t.Error("double start accepted")
	}
}

// TestShardedFlowOrdering pins the tentpole's correctness invariant:
// same-flow packets are never reordered. Interleaved flows carry per-flow
// sequence numbers; whatever interleaving the shards produce at egress,
// each flow's sequence must emerge strictly increasing.
func TestShardedFlowOrdering(t *testing.T) {
	sw, _ := newBaseSwitch(t)
	if err := sw.RunSharded(4, 4); err != nil {
		t.Fatal(err)
	}
	defer sw.Shutdown()
	in, _ := sw.Ports().Port(inPort)
	out, _ := sw.Ports().Port(outPort)

	const flows, perFlow = 8, 40
	go func() {
		// Round-robin across flows so consecutive frames of one flow are
		// maximally separated — the hardest interleaving for affinity.
		for seq := uint32(1); seq <= perFlow; seq++ {
			for f := 0; f < flows; f++ {
				frame := flowPacket(t, uint16(5000+f), seq)
				for !in.Inject(frame) {
					time.Sleep(time.Millisecond)
				}
			}
		}
	}()

	lastSeq := map[uint16]uint32{}
	got := 0
	deadline := time.After(10 * time.Second)
	for got < flows*perFlow {
		d, ok := out.Drain()
		if !ok {
			select {
			case <-deadline:
				t.Fatalf("only %d/%d packets emerged", got, flows*perFlow)
			default:
				time.Sleep(time.Millisecond)
			}
			continue
		}
		var ip pkt.IPv4
		if err := ip.Decode(d[pkt.EthernetLen:]); err != nil {
			t.Fatal(err)
		}
		var tcp pkt.TCP
		if err := tcp.Decode(d[pkt.EthernetLen+int(ip.IHL)*4:]); err != nil {
			t.Fatal(err)
		}
		if last := lastSeq[tcp.SrcPort]; tcp.Seq <= last {
			t.Fatalf("flow %d reordered: seq %d after %d", tcp.SrcPort, tcp.Seq, last)
		}
		lastSeq[tcp.SrcPort] = tcp.Seq
		got++
	}
	for f := 0; f < flows; f++ {
		if lastSeq[uint16(5000+f)] != perFlow {
			t.Errorf("flow %d ended at seq %d, want %d", 5000+f, lastSeq[uint16(5000+f)], perFlow)
		}
	}
}

// TestShardedReconfigConservation soaks the sharded mode under the two
// in-situ reconfiguration paths — INT toggles and a pipeline patch —
// while traffic flows, then checks verdict conservation: every accepted
// packet is transmitted, stage-dropped, tail-dropped, port-dropped or
// no-port-dropped, with nothing lost across the drain-and-swap windows.
// `make race` runs this under the race detector.
func TestShardedReconfigConservation(t *testing.T) {
	w := newBaseWorkspace(t)
	opts := DefaultOptions()
	opts.QueueDepth = 16
	sw, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.ApplyConfig(w.Current().Config); err != nil {
		t.Fatal(err)
	}
	populateBase(t, sw)
	if err := sw.RunSharded(3, 4); err != nil {
		t.Fatal(err)
	}
	defer sw.Shutdown()

	in, _ := sw.Ports().Port(inPort)
	out, _ := sw.Ports().Port(outPort)
	// Keep the egress rx ring from filling (its tail drops are still
	// accounted, this just keeps the common case flowing).
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				if _, ok := out.Drain(); !ok {
					time.Sleep(100 * time.Microsecond)
				}
			}
		}
	}()
	defer close(done)

	// Reconfigure while the burst is in flight: INT on/off round trips,
	// then an in-situ ECMP patch with its selector members.
	reconfigured := make(chan error, 1)
	var injected atomic.Uint64
	go func() {
		reconfigured <- func() error {
			for i := 0; i < 3; i++ {
				for injected.Load() < uint64(50*(i+1)) {
					time.Sleep(time.Millisecond)
				}
				if err := sw.SetInt(true); err != nil {
					return err
				}
				if err := sw.SetInt(false); err != nil {
					return err
				}
			}
			rep, err := w.ApplyScript(script(t, "ecmp.script"), loader(t))
			if err != nil {
				return err
			}
			if _, err := sw.ApplyConfig(rep.Config); err != nil {
				return err
			}
			return sw.AddMember(ctrlplane.MemberReq{
				Table: "ecmp_ipv4", Group: ctrlplane.FieldValue{Value: nexthopID},
				Tag: 1, Params: []uint64{bridgeOut, nhMAC.Uint64()},
			})
		}()
	}()

	accepted := uint64(0)
	for i := 0; i < 600; i++ {
		dst := [4]byte{10, 1, byte(i >> 4), byte(i)}
		if i%5 == 4 {
			dst = [4]byte{192, 168, 0, byte(i)} // no route installed
		}
		if in.Inject(v4Packet(t, dst, routerMAC, 64)) {
			accepted++
		}
		injected.Add(1)
	}
	if err := <-reconfigured; err != nil {
		t.Fatalf("reconfiguration failed mid-stream: %v", err)
	}

	account := func() (uint64, string) {
		_, plDropped := sw.Pipeline().Stats()
		_, tmDrops := sw.TMStats()
		var sent, txDrops uint64
		for i := 0; i < sw.Ports().Len(); i++ {
			p, err := sw.Ports().Port(i)
			if err != nil {
				continue
			}
			st := p.DetailedStats()
			sent += st.Sent
			txDrops += st.TxDrops
		}
		noPort := uint64(0)
		for _, pt := range sw.Telemetry().Reg.Gather() {
			if pt.Name == "ipsa_no_port_drops_total" {
				noPort = uint64(pt.Value)
			}
		}
		total := plDropped + tmDrops + sent + txDrops + noPort
		detail := fmt.Sprintf("stage_drops=%d tm_drops=%d sent=%d tx_drops=%d no_port=%d",
			plDropped, tmDrops, sent, txDrops, noPort)
		return total, detail
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		total, detail := account()
		if total == accepted {
			if total == 0 {
				t.Fatal("nothing accepted")
			}
			// The striped verdict counters must agree with the same total.
			var verdictSum uint64
			for _, c := range sw.tel.verdictCounters() {
				verdictSum += c.Value()
			}
			if verdictSum != accepted {
				t.Fatalf("verdict counters sum to %d, accepted %d (%s)", verdictSum, accepted, detail)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("conservation violated: accepted=%d accounted=%d (%s)", accepted, total, detail)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestShardedSteadyStateAllocs pins the sharded hot path's allocation
// contract: one packet through ingest → shard TM → egest → batched
// transmit performs zero heap allocations once the shard's freelist and
// transmit queues are warm. Measured on a directly-driven shardRunner so
// the number is deterministic (no goroutine scheduling in the loop).
func TestShardedSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on the measured path")
	}
	sw, _ := newBaseSwitch(t)
	sh := &shardRunner{
		idx: 0,
		tm:  pipeline.NewTrafficManager(sw.Ports().Len(), 64),
		dsh: sw.dp.NewShard(1, 64),
		txq: make([][][]byte, sw.Ports().Len()),
	}
	raw := v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64)
	data := make([]byte, len(raw))
	out, _ := sw.Ports().Port(outPort)
	fwd := func() {
		copy(data, raw) // egress rewrites headers in place; reset each run
		v := sw.epochs.pin()
		sw.shardIngest(sh, shardFrame{data: data, port: inPort}, v)
		sw.shardDrain(sh, v)
		if v != nil {
			v.unpin()
		}
		out.Drain() // keep the tx ring empty so XmitBatch never tail-drops
	}
	for i := 0; i < 64; i++ {
		fwd() // warm the freelist, env and txq storage
	}
	if avg := testing.AllocsPerRun(200, fwd); avg != 0 {
		t.Errorf("sharded hot path allocates: %.2f allocs/op", avg)
	}
}

// TestShardedShutdownDrains: frames already steered to a shard are still
// processed when Shutdown races the ingest, and Shutdown returns (no
// worker deadlocks on a closed input).
func TestShardedShutdownDrains(t *testing.T) {
	sw, _ := newBaseSwitch(t)
	if err := sw.RunSharded(2, 8); err != nil {
		t.Fatal(err)
	}
	in, _ := sw.Ports().Port(inPort)
	for i := 0; i < 50; i++ {
		in.Inject(v4Packet(t, [4]byte{10, 1, 0, byte(i)}, routerMAC, 64))
	}
	finished := make(chan struct{})
	go func() {
		sw.Shutdown()
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown hung with frames in flight")
	}
}
