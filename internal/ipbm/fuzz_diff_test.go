package ipbm

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ipsa/internal/compiler/backend"
	"ipsa/internal/ctrlplane"
	"ipsa/internal/pkt"
	"ipsa/internal/rp4/parser"
	"ipsa/internal/tsp"
)

// The compiled executor is an optimization over the reference tree
// interpreter; the two must be bit-for-bit equivalent. These tests hold
// that line two ways: a differential fuzz target over arbitrary packet
// bytes, and a deterministic sweep over every shipped example design with
// realistic traffic.

var (
	diffFuzzOnce sync.Once
	diffFuzzA    *Switch // compiled
	diffFuzzB    *Switch // interpreter oracle
)

// faultSnapshot flattens the executor fault counters for comparison.
func faultSnapshot(sw *Switch) [3]uint64 {
	f := sw.Faults()
	return [3]uint64{
		f.InvalidHeaderAccess.Load(),
		f.RegisterFault.Load(),
		f.BadTemplate.Load(),
	}
}

// diffFuzzBringUp builds a compiled/interpreter switch pair running the
// SRv6 design (the largest parsing surface) with populated base tables.
// No testing.T plumbing so it can run inside the fuzz engine's worker.
func diffFuzzBringUp() (*Switch, *Switch, error) {
	read := func(name string) (string, error) {
		b, err := os.ReadFile(filepath.Join("../../testdata", name))
		return string(b), err
	}
	src, err := read("base_l2l3.rp4")
	if err != nil {
		return nil, nil, err
	}
	prog, err := parser.Parse("base_l2l3.rp4", src)
	if err != nil {
		return nil, nil, err
	}
	copts := backend.DefaultOptions()
	copts.NumTSPs = 16
	w, err := backend.NewWorkspace(prog, copts)
	if err != nil {
		return nil, nil, err
	}
	scriptSrc, err := read("srv6.script")
	if err != nil {
		return nil, nil, err
	}
	rep, err := w.ApplyScript(scriptSrc, read)
	if err != nil {
		return nil, nil, err
	}
	mk := func(mode tsp.ExecMode) (*Switch, error) {
		o := DefaultOptions()
		o.Exec = mode
		sw, err := New(o)
		if err != nil {
			return nil, err
		}
		if _, err := sw.ApplyConfig(rep.Config); err != nil {
			return nil, err
		}
		if err := populateBaseErr(sw); err != nil {
			return nil, err
		}
		return sw, nil
	}
	a, err := mk(tsp.ExecCompiled)
	if err != nil {
		return nil, nil, err
	}
	b, err := mk(tsp.ExecInterp)
	if err != nil {
		return nil, nil, err
	}
	return a, b, nil
}

// comparePacket demands identical observable outcomes from both
// executors: packet bytes, user metadata, verdict bits and egress port.
func comparePacket(pa, pb *pkt.Packet) error {
	if pa.Drop != pb.Drop || pa.ToCPU != pb.ToCPU || pa.OutPort != pb.OutPort {
		return fmt.Errorf("verdict diverged: compiled={drop:%v cpu:%v out:%d} interp={drop:%v cpu:%v out:%d}",
			pa.Drop, pa.ToCPU, pa.OutPort, pb.Drop, pb.ToCPU, pb.OutPort)
	}
	if !bytes.Equal(pa.Data, pb.Data) {
		return fmt.Errorf("packet bytes diverged:\ncompiled: %x\ninterp:   %x", pa.Data, pb.Data)
	}
	if !bytes.Equal(pa.Meta, pb.Meta) {
		return fmt.Errorf("metadata diverged:\ncompiled: %x\ninterp:   %x", pa.Meta, pb.Meta)
	}
	return nil
}

// FuzzCompiledVsInterp feeds arbitrary packet bytes through the compiled
// and interpreter executors and demands bit-identical outcomes, including
// the fault counters (faults are part of the observable contract). Under
// plain `go test` the seed corpus runs as regression tests.
func FuzzCompiledVsInterp(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{0x02, 0, 0, 0, 0, 1}, uint8(1))
	srv6, _ := pkt.Serialize(
		&pkt.Ethernet{Dst: routerMAC, Src: hostMAC, EtherType: pkt.EtherTypeIPv6},
		&pkt.IPv6{NextHeader: pkt.IPProtoRouting, HopLimit: 64},
		&pkt.SRH{NextHeader: pkt.IPProtoTCP, SegmentsLeft: 1, Segments: [][16]byte{{1}, {2}}},
		&pkt.TCP{SrcPort: 1, DstPort: 2},
	)
	f.Add(srv6, uint8(1))
	v4 := []byte{
		0x02, 0, 0, 0, 0, 0x01, 0x02, 0, 0, 0, 0, 0x02, 0x08, 0x00,
		0x45, 0, 0, 20, 0, 0, 0, 0, 64, 6, 0, 0, 10, 0, 0, 1, 10, 0, 0, 2,
	}
	f.Add(v4, uint8(1))
	// Truncated v4 header: exercises the invalid-header fault paths.
	f.Add(v4[:16], uint8(1))

	f.Fuzz(func(t *testing.T, data []byte, port uint8) {
		diffFuzzOnce.Do(func() { diffFuzzA, diffFuzzB, _ = diffFuzzBringUp() })
		if diffFuzzA == nil || diffFuzzB == nil {
			t.Skip("switch bring-up failed")
		}
		in := int(port) % 8
		pa, err := diffFuzzA.ProcessPacket(append([]byte(nil), data...), in)
		if err != nil {
			t.Fatalf("compiled ProcessPacket: %v", err)
		}
		pb, err := diffFuzzB.ProcessPacket(append([]byte(nil), data...), in)
		if err != nil {
			t.Fatalf("interp ProcessPacket: %v", err)
		}
		if err := comparePacket(pa, pb); err != nil {
			t.Fatal(err)
		}
		if fa, fb := faultSnapshot(diffFuzzA), faultSnapshot(diffFuzzB); fa != fb {
			t.Fatalf("fault counters diverged: compiled=%v interp=%v (invalid_header, register, bad_template)", fa, fb)
		}
	})
}

// TestDifferentialCompiledVsInterp sweeps every shipped design: for each,
// a compiled and an interpreter switch process the same realistic traffic
// mix and must agree on every outcome and fault count.
func TestDifferentialCompiledVsInterp(t *testing.T) {
	designs := []struct {
		name   string
		script string // applied on top of the base design; "" = base only
	}{
		{"base", ""},
		{"acl", "acl.script"},
		{"ecmp", "ecmp.script"},
		{"flowprobe", "flowprobe.script"},
		{"srv6", "srv6.script"},
		{"vlan", "vlan.script"},
	}
	for _, d := range designs {
		t.Run(d.name, func(t *testing.T) {
			w := newBaseWorkspace(t)
			cfg := w.Current().Config
			if d.script != "" {
				rep, err := w.ApplyScript(script(t, d.script), loader(t))
				if err != nil {
					t.Fatal(err)
				}
				cfg = rep.Config
			}
			mk := func(mode tsp.ExecMode) *Switch {
				o := DefaultOptions()
				o.Exec = mode
				sw, err := New(o)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := sw.ApplyConfig(cfg); err != nil {
					t.Fatal(err)
				}
				// Some scripts swap tables out (ecmp replaces
				// nexthop_tbl with a selector); install what the
				// design still has — identically on both switches.
				for _, req := range baseEntries() {
					_, _ = sw.InsertEntry(req)
				}
				if d.name == "ecmp" {
					if err := sw.AddMember(ctrlplane.MemberReq{
						Table: "ecmp_ipv4", Group: ctrlplane.FieldValue{Value: nexthopID},
						Tag: 1, Params: []uint64{bridgeOut, nhMAC.Uint64()},
					}); err != nil {
						t.Fatal(err)
					}
				}
				return sw
			}
			a := mk(tsp.ExecCompiled)
			b := mk(tsp.ExecInterp)
			runDiff(t, a, b, diffTraffic(t, 48), d.name+" compiled vs interp")
			if fa, fb := faultSnapshot(a), faultSnapshot(b); fa != fb {
				t.Fatalf("%s: fault counters diverged: compiled=%v interp=%v", d.name, fa, fb)
			}
		})
	}
}
