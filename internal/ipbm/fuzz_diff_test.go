package ipbm

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ipsa/internal/compiler/backend"
	"ipsa/internal/ctrlplane"
	"ipsa/internal/pkt"
	"ipsa/internal/rp4/parser"
	"ipsa/internal/tsp"
)

// The flat-program VM and the fused second-stage closures are
// optimizations over the reference tree interpreter; all three executor
// tiers must be bit-for-bit equivalent. These tests hold that line two
// ways: differential fuzz targets over arbitrary packet bytes (compiled
// vs interp, and fused vs the compiled programs it was lowered from),
// and a deterministic three-way sweep over every shipped example design
// with realistic traffic.

var (
	diffFuzzOnce sync.Once
	diffFuzzA    *Switch // compiled
	diffFuzzB    *Switch // interpreter oracle
	diffFuzzC    *Switch // fused second-stage closures
)

// faultSnapshot flattens the executor fault counters for comparison.
func faultSnapshot(sw *Switch) [3]uint64 {
	f := sw.Faults()
	return [3]uint64{
		f.InvalidHeaderAccess.Load(),
		f.RegisterFault.Load(),
		f.BadTemplate.Load(),
	}
}

// diffFuzzBringUp builds a compiled/interpreter/fused switch triple
// running the SRv6 design (the largest parsing surface) with populated
// base tables. No testing.T plumbing so it can run inside the fuzz
// engine's worker.
func diffFuzzBringUp() (*Switch, *Switch, *Switch, error) {
	read := func(name string) (string, error) {
		b, err := os.ReadFile(filepath.Join("../../testdata", name))
		return string(b), err
	}
	src, err := read("base_l2l3.rp4")
	if err != nil {
		return nil, nil, nil, err
	}
	prog, err := parser.Parse("base_l2l3.rp4", src)
	if err != nil {
		return nil, nil, nil, err
	}
	copts := backend.DefaultOptions()
	copts.NumTSPs = 16
	w, err := backend.NewWorkspace(prog, copts)
	if err != nil {
		return nil, nil, nil, err
	}
	scriptSrc, err := read("srv6.script")
	if err != nil {
		return nil, nil, nil, err
	}
	rep, err := w.ApplyScript(scriptSrc, read)
	if err != nil {
		return nil, nil, nil, err
	}
	mk := func(mode tsp.ExecMode) (*Switch, error) {
		o := DefaultOptions()
		o.Exec = mode
		sw, err := New(o)
		if err != nil {
			return nil, err
		}
		if _, err := sw.ApplyConfig(rep.Config); err != nil {
			return nil, err
		}
		if err := populateBaseErr(sw); err != nil {
			return nil, err
		}
		return sw, nil
	}
	a, err := mk(tsp.ExecCompiled)
	if err != nil {
		return nil, nil, nil, err
	}
	b, err := mk(tsp.ExecInterp)
	if err != nil {
		return nil, nil, nil, err
	}
	c, err := mk(tsp.ExecFused)
	if err != nil {
		return nil, nil, nil, err
	}
	return a, b, c, nil
}

// comparePacket demands identical observable outcomes from two executor
// tiers: packet bytes, user metadata, verdict bits and egress port. The
// names label the tiers in the failure report.
func comparePacket(aName, bName string, pa, pb *pkt.Packet) error {
	if pa.Drop != pb.Drop || pa.ToCPU != pb.ToCPU || pa.OutPort != pb.OutPort {
		return fmt.Errorf("verdict diverged: %s={drop:%v cpu:%v out:%d} %s={drop:%v cpu:%v out:%d}",
			aName, pa.Drop, pa.ToCPU, pa.OutPort, bName, pb.Drop, pb.ToCPU, pb.OutPort)
	}
	if !bytes.Equal(pa.Data, pb.Data) {
		return fmt.Errorf("packet bytes diverged:\n%s: %x\n%s: %x", aName, pa.Data, bName, pb.Data)
	}
	if !bytes.Equal(pa.Meta, pb.Meta) {
		return fmt.Errorf("metadata diverged:\n%s: %x\n%s: %x", aName, pa.Meta, bName, pb.Meta)
	}
	return nil
}

// FuzzCompiledVsInterp feeds arbitrary packet bytes through the compiled
// and interpreter executors and demands bit-identical outcomes, including
// the fault counters (faults are part of the observable contract). Under
// plain `go test` the seed corpus runs as regression tests.
func FuzzCompiledVsInterp(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{0x02, 0, 0, 0, 0, 1}, uint8(1))
	srv6, _ := pkt.Serialize(
		&pkt.Ethernet{Dst: routerMAC, Src: hostMAC, EtherType: pkt.EtherTypeIPv6},
		&pkt.IPv6{NextHeader: pkt.IPProtoRouting, HopLimit: 64},
		&pkt.SRH{NextHeader: pkt.IPProtoTCP, SegmentsLeft: 1, Segments: [][16]byte{{1}, {2}}},
		&pkt.TCP{SrcPort: 1, DstPort: 2},
	)
	f.Add(srv6, uint8(1))
	v4 := []byte{
		0x02, 0, 0, 0, 0, 0x01, 0x02, 0, 0, 0, 0, 0x02, 0x08, 0x00,
		0x45, 0, 0, 20, 0, 0, 0, 0, 64, 6, 0, 0, 10, 0, 0, 1, 10, 0, 0, 2,
	}
	f.Add(v4, uint8(1))
	// Truncated v4 header: exercises the invalid-header fault paths.
	f.Add(v4[:16], uint8(1))

	f.Fuzz(func(t *testing.T, data []byte, port uint8) {
		diffFuzzOnce.Do(func() { diffFuzzA, diffFuzzB, diffFuzzC, _ = diffFuzzBringUp() })
		if diffFuzzA == nil || diffFuzzB == nil {
			t.Skip("switch bring-up failed")
		}
		in := int(port) % 8
		pa, err := diffFuzzA.ProcessPacket(append([]byte(nil), data...), in)
		if err != nil {
			t.Fatalf("compiled ProcessPacket: %v", err)
		}
		pb, err := diffFuzzB.ProcessPacket(append([]byte(nil), data...), in)
		if err != nil {
			t.Fatalf("interp ProcessPacket: %v", err)
		}
		if err := comparePacket("compiled", "interp", pa, pb); err != nil {
			t.Fatal(err)
		}
		if fa, fb := faultSnapshot(diffFuzzA), faultSnapshot(diffFuzzB); fa != fb {
			t.Fatalf("fault counters diverged: compiled=%v interp=%v (invalid_header, register, bad_template)", fa, fb)
		}
	})
}

// FuzzFusedVsCompiled holds the second-stage compiler to the same line:
// the fused closures must be bit-for-bit equivalent — outcomes and fault
// counters — to the flat programs they were lowered from, on arbitrary
// packet bytes. Under plain `go test` the seed corpus runs as regression
// tests.
func FuzzFusedVsCompiled(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{0x02, 0, 0, 0, 0, 1}, uint8(1))
	srv6, _ := pkt.Serialize(
		&pkt.Ethernet{Dst: routerMAC, Src: hostMAC, EtherType: pkt.EtherTypeIPv6},
		&pkt.IPv6{NextHeader: pkt.IPProtoRouting, HopLimit: 64},
		&pkt.SRH{NextHeader: pkt.IPProtoTCP, SegmentsLeft: 1, Segments: [][16]byte{{1}, {2}}},
		&pkt.TCP{SrcPort: 1, DstPort: 2},
	)
	f.Add(srv6, uint8(1))
	v4 := []byte{
		0x02, 0, 0, 0, 0, 0x01, 0x02, 0, 0, 0, 0, 0x02, 0x08, 0x00,
		0x45, 0, 0, 20, 0, 0, 0, 0, 64, 6, 0, 0, 10, 0, 0, 1, 10, 0, 0, 2,
	}
	f.Add(v4, uint8(1))
	// Truncated v4 header: exercises the invalid-header fault paths.
	f.Add(v4[:16], uint8(1))

	f.Fuzz(func(t *testing.T, data []byte, port uint8) {
		diffFuzzOnce.Do(func() { diffFuzzA, diffFuzzB, diffFuzzC, _ = diffFuzzBringUp() })
		if diffFuzzA == nil || diffFuzzC == nil {
			t.Skip("switch bring-up failed")
		}
		in := int(port) % 8
		// The compiled switch is shared with FuzzCompiledVsInterp, so its
		// absolute fault totals include that target's traffic; compare the
		// per-packet deltas instead.
		beforeC, beforeA := faultSnapshot(diffFuzzC), faultSnapshot(diffFuzzA)
		pc, err := diffFuzzC.ProcessPacket(append([]byte(nil), data...), in)
		if err != nil {
			t.Fatalf("fused ProcessPacket: %v", err)
		}
		pa, err := diffFuzzA.ProcessPacket(append([]byte(nil), data...), in)
		if err != nil {
			t.Fatalf("compiled ProcessPacket: %v", err)
		}
		if err := comparePacket("fused", "compiled", pc, pa); err != nil {
			t.Fatal(err)
		}
		dc, da := faultDelta(faultSnapshot(diffFuzzC), beforeC), faultDelta(faultSnapshot(diffFuzzA), beforeA)
		if dc != da {
			t.Fatalf("fault counters diverged: fused=%v compiled=%v (invalid_header, register, bad_template)", dc, da)
		}
	})
}

// faultDelta subtracts a prior fault snapshot from a later one.
func faultDelta(after, before [3]uint64) [3]uint64 {
	for i := range after {
		after[i] -= before[i]
	}
	return after
}

// TestDifferentialCompiledVsInterp sweeps every shipped design: for
// each, switches on all three executor tiers — fused closures, the
// flat-program VM and the reference interpreter — process the same
// realistic traffic mix and must agree on every outcome and fault count.
func TestDifferentialCompiledVsInterp(t *testing.T) {
	designs := []struct {
		name   string
		script string // applied on top of the base design; "" = base only
	}{
		{"base", ""},
		{"acl", "acl.script"},
		{"ecmp", "ecmp.script"},
		{"flowprobe", "flowprobe.script"},
		{"srv6", "srv6.script"},
		{"vlan", "vlan.script"},
	}
	for _, d := range designs {
		t.Run(d.name, func(t *testing.T) {
			w := newBaseWorkspace(t)
			cfg := w.Current().Config
			if d.script != "" {
				rep, err := w.ApplyScript(script(t, d.script), loader(t))
				if err != nil {
					t.Fatal(err)
				}
				cfg = rep.Config
			}
			mk := func(mode tsp.ExecMode) *Switch {
				o := DefaultOptions()
				o.Exec = mode
				sw, err := New(o)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := sw.ApplyConfig(cfg); err != nil {
					t.Fatal(err)
				}
				// Some scripts swap tables out (ecmp replaces
				// nexthop_tbl with a selector); install what the
				// design still has — identically on both switches.
				for _, req := range baseEntries() {
					_, _ = sw.InsertEntry(req)
				}
				if d.name == "ecmp" {
					if err := sw.AddMember(ctrlplane.MemberReq{
						Table: "ecmp_ipv4", Group: ctrlplane.FieldValue{Value: nexthopID},
						Tag: 1, Params: []uint64{bridgeOut, nhMAC.Uint64()},
					}); err != nil {
						t.Fatal(err)
					}
				}
				return sw
			}
			a := mk(tsp.ExecCompiled)
			b := mk(tsp.ExecInterp)
			c := mk(tsp.ExecFused)
			runDiff(t, a, b, diffTraffic(t, 48), d.name+" compiled vs interp")
			if fa, fb := faultSnapshot(a), faultSnapshot(b); fa != fb {
				t.Fatalf("%s: fault counters diverged: compiled=%v interp=%v", d.name, fa, fb)
			}
			// The compiled switch sees the traffic a second time here, so
			// compare this round's fault delta against the fused totals.
			preA := faultSnapshot(a)
			runDiff(t, c, a, diffTraffic(t, 48), d.name+" fused vs compiled")
			if fc, fa := faultSnapshot(c), faultDelta(faultSnapshot(a), preA); fc != fa {
				t.Fatalf("%s: fault counters diverged: fused=%v compiled=%v", d.name, fc, fa)
			}
		})
	}
}
