package ipbm

import (
	"testing"
	"time"

	"ipsa/internal/pkt"
)

// newManualHealthSwitch builds the base switch with the health sampler in
// manual mode: tests drive Check() with a synthetic clock instead of
// waiting on the 1s ticker.
func newManualHealthSwitch(t *testing.T) *Switch {
	t.Helper()
	w := newBaseWorkspace(t)
	opts := DefaultOptions()
	opts.HealthInterval = -1
	opts.LatencyEvery = 1 // sample every packet so latency assertions are deterministic
	sw, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.ApplyConfig(w.Current().Config); err != nil {
		t.Fatal(err)
	}
	populateBase(t, sw)
	return sw
}

// TestHealthReadiness: /readyz's backing predicate flips once a
// configuration is installed.
func TestHealthReadiness(t *testing.T) {
	sw, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sw.Health().Ready() {
		t.Fatal("switch ready before any configuration")
	}
	w := newBaseWorkspace(t)
	if _, err := sw.ApplyConfig(w.Current().Config); err != nil {
		t.Fatal(err)
	}
	if !sw.Health().Ready() {
		t.Fatal("switch not ready after ApplyConfig")
	}
}

// TestShardStallDegradesHealth deliberately freezes one shard worker via
// the gate hook while frames queue behind it, and asserts the full
// acceptance chain: watchdog flags the lane, ipsa_health_state moves to
// degraded, a health_degraded event lands in the audit ring — then the
// lane recovers once released.
func TestShardStallDegradesHealth(t *testing.T) {
	sw := newManualHealthSwitch(t)
	defer sw.Shutdown()
	if err := sw.RunSharded(2, 4); err != nil {
		t.Fatal(err)
	}
	h := sw.Health()
	gauge := sw.Telemetry().Reg.Gauge("ipsa_health_state")

	frame := v4Packet(t, [4]byte{10, 1, 0, 5}, routerMAC, 64)
	target := int(pkt.RSSHash(frame) % 2)
	release, err := sw.blockShard(target)
	if err != nil {
		t.Fatal(err)
	}

	// One frame wakes the worker into the gate; the rest pile up behind
	// it so the lane has work queued while its heartbeat is frozen.
	in, err := sw.Ports().Port(inPort)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		in.Inject(frame)
	}
	// Wait until the reader has steered frames into the blocked shard's
	// queue (pending > 0 is what arms the stall detector).
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := sw.HealthQuery(0)
		pending := 0
		for _, l := range st.Lanes {
			pending += l.Pending
		}
		if pending > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("frames never queued behind the blocked shard")
		}
		time.Sleep(5 * time.Millisecond)
	}

	now := time.Now().UnixNano()
	check := func(n int) {
		for i := 0; i < n; i++ {
			now += int64(time.Second)
			h.Check(now)
		}
	}
	check(5) // prime + StallRounds(3) frozen checks
	if st := h.State(); st.String() != "degraded" {
		t.Fatalf("state with one blocked shard = %v, want degraded", st)
	}
	if v := gauge.Value(); v != 1 {
		t.Fatalf("ipsa_health_state = %d, want 1 (degraded)", v)
	}
	var sawDegraded bool
	for _, ev := range sw.Telemetry().Events.Dump(0) {
		if ev.Kind == "health_degraded" {
			sawDegraded = true
		}
	}
	if !sawDegraded {
		t.Fatal("no health_degraded event in the audit ring")
	}
	st := sw.HealthQuery(0)
	stalled := ""
	for _, l := range st.Lanes {
		if l.State == "stalled" {
			stalled = l.Name
		}
	}
	if want := "shard-" + string(rune('0'+target)); stalled != want {
		t.Fatalf("stalled lane = %q, want %q", stalled, want)
	}

	// Release the gate: the shard drains its backlog and the next checks
	// see progress again.
	release()
	deadline = time.Now().Add(2 * time.Second)
	for {
		check(1)
		if h.State().String() == "healthy" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("state never recovered: %v (%s)", h.State(), sw.HealthQuery(0).Reason)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v := gauge.Value(); v != 0 {
		t.Fatalf("ipsa_health_state after recovery = %d, want 0", v)
	}
	var sawRecovered bool
	for _, ev := range sw.Telemetry().Events.Dump(0) {
		if ev.Kind == "health_recovered" {
			sawRecovered = true
		}
	}
	if !sawRecovered {
		t.Fatal("no health_recovered event in the audit ring")
	}
}

// TestHealthQueryRates drives traffic through the synchronous path and
// checks the CCM health payload reports nonzero throughput with the
// verdict counters feeding PPS.
func TestHealthQueryRates(t *testing.T) {
	sw := newManualHealthSwitch(t)
	h := sw.Health()
	frame := v4Packet(t, [4]byte{10, 1, 0, 5}, routerMAC, 64)

	now := time.Now().UnixNano()
	h.Check(now)
	buf := make([]byte, len(frame))
	for i := 0; i < 5; i++ {
		for j := 0; j < 200; j++ {
			// ProcessPacket rewrites the frame in place (TTL, MACs), so
			// feed it a fresh copy each round.
			copy(buf, frame)
			if _, err := sw.ProcessPacket(buf, inPort); err != nil {
				t.Fatal(err)
			}
		}
		now += int64(time.Second)
		h.Check(now)
	}
	st := sw.HealthQuery(10 * time.Second)
	if st.PPS <= 0 {
		t.Fatalf("PPS = %v, want > 0", st.PPS)
	}
	if st.State != "healthy" {
		t.Fatalf("state = %q (%s), want healthy", st.State, st.Reason)
	}
	// With LatencyEvery=1 every packet feeds the per-TSP histograms, so
	// the windowed latency view must be populated.
	if st.Latency == nil || st.Latency.Count == 0 {
		t.Fatal("no windowed latency distribution in the health payload")
	}
	if st.Samples < 2 {
		t.Fatalf("ring samples = %d, want >= 2", st.Samples)
	}
}

// TestHealthEgressLaneRegistration: the pipelined mode registers one
// watchdog lane per egress worker with heartbeat counters.
func TestHealthEgressLaneRegistration(t *testing.T) {
	sw := newManualHealthSwitch(t)
	defer sw.Shutdown()
	if err := sw.RunPipelined(2); err != nil {
		t.Fatal(err)
	}
	st := sw.HealthQuery(0)
	if len(st.Lanes) != 2 {
		t.Fatalf("lanes = %d, want 2 egress workers", len(st.Lanes))
	}
	for _, l := range st.Lanes {
		if l.State != "ok" {
			t.Fatalf("lane %s = %s at startup, want ok", l.Name, l.State)
		}
	}
	// The heartbeat counters must be registered series.
	found := 0
	for _, p := range sw.Telemetry().Reg.Gather() {
		if p.Name == "ipsa_egress_heartbeat_total" {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("ipsa_egress_heartbeat_total series = %d, want 2", found)
	}
}
