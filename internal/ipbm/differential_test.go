package ipbm

import (
	"bytes"
	"os"
	"testing"

	"ipsa/internal/compiler/backend"
	"ipsa/internal/compiler/frontend"
	"ipsa/internal/mem"
	"ipsa/internal/p4"
	"ipsa/internal/rp4/ast"
	"ipsa/internal/rp4/parser"
	"ipsa/internal/rp4/printer"
	"ipsa/internal/trafficgen"
)

// diffTraffic builds a mixed workload covering every path: routed v4
// (host+lpm), routed v6, bridged L2, unroutable, unknown MACs.
func diffTraffic(t *testing.T, n int) [][]byte {
	t.Helper()
	var out [][]byte
	profiles := []trafficgen.Profile{
		trafficgen.IPv4Routed, trafficgen.IPv6Routed, trafficgen.Mixed46, trafficgen.L2Bridged,
	}
	for i, prof := range profiles {
		cfg := trafficgen.DefaultConfig()
		cfg.Profile = prof
		cfg.Flows = n
		cfg.Seed = int64(i + 1)
		cfg.RouterMAC, cfg.HostMAC = routerMAC, hostMAC
		cfg.V4Base = [4]byte{10, 1, 0, 0}
		g, err := trafficgen.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, g.FlowPackets()...)
	}
	return out
}

// runDiff pushes the same packets through two switches and demands
// bit-identical outcomes.
func runDiff(t *testing.T, a, b *Switch, packets [][]byte, what string) {
	t.Helper()
	for i, raw := range packets {
		pa, err := a.ProcessPacket(append([]byte(nil), raw...), inPort)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := b.ProcessPacket(append([]byte(nil), raw...), inPort)
		if err != nil {
			t.Fatal(err)
		}
		if pa.Drop != pb.Drop || pa.OutPort != pb.OutPort || pa.ToCPU != pb.ToCPU {
			t.Fatalf("%s: packet %d outcome diverged: a={drop:%v out:%d} b={drop:%v out:%d}",
				what, i, pa.Drop, pa.OutPort, pb.Drop, pb.OutPort)
		}
		if !bytes.Equal(pa.Data, pb.Data) {
			t.Fatalf("%s: packet %d bytes diverged", what, i)
		}
	}
}

func switchFromOpts(t *testing.T, compOpts backend.Options, swOpts Options) *Switch {
	t.Helper()
	w := func() *backend.Workspace {
		src, err := os.ReadFile("../../testdata/base_l2l3.rp4")
		if err != nil {
			t.Fatal(err)
		}
		prog, err := parseRP4(t, "base_l2l3.rp4", string(src))
		if err != nil {
			t.Fatal(err)
		}
		ws, err := backend.NewWorkspace(prog, compOpts)
		if err != nil {
			t.Fatal(err)
		}
		return ws
	}()
	sw, err := New(swOpts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.ApplyConfig(w.Current().Config); err != nil {
		t.Fatal(err)
	}
	populateBase(t, sw)
	return sw
}

// TestDifferentialMergedVsUnmerged: rp4bc's predicate merging is an
// optimization; it must never change forwarding behaviour.
func TestDifferentialMergedVsUnmerged(t *testing.T) {
	on := backend.DefaultOptions()
	on.NumTSPs = 16
	off := on
	off.EnableMerge = false
	a := switchFromOpts(t, on, DefaultOptions())
	b := switchFromOpts(t, off, DefaultOptions())
	runDiff(t, a, b, diffTraffic(t, 64), "merge on/off")
}

// TestDifferentialClusteredCrossbar: the clustered crossbar changes
// placement and forces migrations but never behaviour.
func TestDifferentialClusteredCrossbar(t *testing.T) {
	comp := backend.DefaultOptions()
	comp.NumTSPs = 16
	full := DefaultOptions()
	clustered := DefaultOptions()
	clustered.Crossbar = mem.ClusteredCrossbar
	// A roomy pool so each cluster holds the biggest table.
	clustered.Mem = mem.Config{Blocks: 128, BlockWidth: 128, BlockDepth: 4096, Clusters: 2}
	a := switchFromOpts(t, comp, full)
	b := switchFromOpts(t, comp, clustered)
	runDiff(t, a, b, diffTraffic(t, 48), "full vs clustered crossbar")
}

// TestDifferentialP4VsRP4: the same design authored in P4 (through rp4fc)
// and in rP4 natively must forward identically.
func TestDifferentialP4VsRP4(t *testing.T) {
	comp := backend.DefaultOptions()
	comp.NumTSPs = 16
	a := switchFromOpts(t, comp, DefaultOptions())

	p4src, err := os.ReadFile("../../testdata/base_l2l3.p4")
	if err != nil {
		t.Fatal(err)
	}
	hlir, err := p4.Parse("base_l2l3.p4", string(p4src))
	if err != nil {
		t.Fatal(err)
	}
	prog, _, err := frontend.Transform(hlir)
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip the generated source through the printer to also pin the
	// text form.
	prog2, err := parseRP4(t, "generated.rp4", printer.Print(prog))
	if err != nil {
		t.Fatal(err)
	}
	ws, err := backend.NewWorkspace(prog2, comp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.ApplyConfig(ws.Current().Config); err != nil {
		t.Fatal(err)
	}
	populateBase(t, b)
	runDiff(t, a, b, diffTraffic(t, 64), "P4 vs rP4")
}

// TestDifferentialLayoutDPvsGreedy: after an update, DP and greedy layout
// place stages differently but forward identically.
func TestDifferentialLayoutDPvsGreedy(t *testing.T) {
	mk := func(dp bool) (*Switch, *backend.Workspace) {
		comp := backend.DefaultOptions()
		comp.NumTSPs = 16
		comp.IncrementalDP = dp
		src, err := os.ReadFile("../../testdata/base_l2l3.rp4")
		if err != nil {
			t.Fatal(err)
		}
		prog, err := parseRP4(t, "base_l2l3.rp4", string(src))
		if err != nil {
			t.Fatal(err)
		}
		ws, err := backend.NewWorkspace(prog, comp)
		if err != nil {
			t.Fatal(err)
		}
		sw, err := New(DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sw.ApplyConfig(ws.Current().Config); err != nil {
			t.Fatal(err)
		}
		populateBase(t, sw)
		return sw, ws
	}
	update := func(sw *Switch, ws *backend.Workspace) {
		rep, err := ws.ApplyScript(script(t, "flowprobe.script"), loader(t))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sw.ApplyConfig(rep.Config); err != nil {
			t.Fatal(err)
		}
	}
	a, wsA := mk(true)
	b, wsB := mk(false)
	update(a, wsA)
	update(b, wsB)
	runDiff(t, a, b, diffTraffic(t, 48), "DP vs greedy layout")
}

// parseRP4 keeps the differential tests terse.
func parseRP4(t *testing.T, name, src string) (*ast.Program, error) {
	t.Helper()
	return parser.Parse(name, src)
}
