package ipbm

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ipsa/internal/ctrlplane"
	"ipsa/internal/dataplane"
	"ipsa/internal/match"
	"ipsa/internal/mem"
	"ipsa/internal/pipeline"
	"ipsa/internal/pkt"
	"ipsa/internal/telemetry"
	"ipsa/internal/template"
	"ipsa/internal/tsp"
)

// This file implements the epoch-versioned program store, the hitless
// replacement for drain-and-swap reconfiguration. Every reconfiguration
// (apply, patch, INT toggle, edit commit) assembles an immutable
// progVersion — the compiled stage programs, the resolved table/selector
// snapshot and the INT sink that belong together — and publishes it with
// one atomic pointer store. Packets pin the version they entered under
// and execute it to completion, so an old and a new program briefly
// coexist and no packet ever waits for a writer. A superseded version is
// retired and reclaimed once its in-flight count drains to zero.
//
// Table *contents* are intentionally not versioned: entry inserts and
// member adds mutate the shared engines in place (control-plane writes
// were always visible mid-flight, same as the legacy path). What the
// version freezes is the program and the name→handle view, so a stage
// compiled against epoch N can never observe a table dropped in N+1.

// epochSlot is one physical TSP's program under a version: the TSP
// object (kept for latency-histogram attribution) plus the stage
// runtimes it executes under this version.
type epochSlot struct {
	t      *tsp.TSP
	stages []*tsp.StageRuntime
}

// progVersion is one immutable epoch of the program store.
type progVersion struct {
	epoch  uint64
	design *dataplane.Design

	// ingress/egress are the pre-split active slots: the selector's
	// TM split is baked in at publish time so a pinned packet also sees
	// a consistent pipeline shape.
	ingress []epochSlot
	egress  []epochSlot

	// lookups is the resolved table/selector view this version's programs
	// were bound against.
	lookups *lookupSnapshot

	// sink is the INT sink active when the version was published (nil
	// when INT is off in this version).
	sink *intSink

	// sigs/built are the structural-hash build cache: stage name →
	// canonical signature and compiled runtime. The next epoch reuses a
	// runtime when the signature matches and none of the stage's tables
	// were created, dropped or migrated — a one-table patch recompiles
	// one stage, not the pipeline.
	sigs  map[string]string
	built map[string]*tsp.StageRuntime

	// inFlight counts packets (or sharded batches' packets) currently
	// pinned to this version; a retired version is reclaimed when it
	// reaches zero.
	inFlight atomic.Int64
}

// unpin releases one pinned packet.
func (v *progVersion) unpin() { v.inFlight.Add(-1) }

// quiesced reports whether no packet executes this version anymore.
func (v *progVersion) quiesced() bool { return v.inFlight.Load() == 0 }

// Lookup implements tsp.TableBackend over the version's frozen handle
// view (interpreter mode and unresolved compiled applies land here).
func (v *progVersion) Lookup(table string, key []byte) (match.Result, bool) {
	t := v.lookups.tables[table]
	if t == nil {
		return match.Result{}, false
	}
	return t.Lookup(key)
}

// LookupSelector implements the selector half of tsp.TableBackend.
func (v *progVersion) LookupSelector(table string, groupKey []byte, h uint64) (match.Result, bool) {
	st := v.lookups.selectors[table]
	if st == nil {
		return match.Result{}, false
	}
	return st.lookup(groupKey, h)
}

// runIngress executes the version's ingress slots on a packet, counting
// drops against the shared pipeline stats. Reports survival to the TM.
func (v *progVersion) runIngress(pl *pipeline.Pipeline, p *pkt.Packet, env *tsp.Env) bool {
	for i := range v.ingress {
		sl := &v.ingress[i]
		sl.t.ProcessWith(sl.stages, p, v.design.Parser, v, env)
		if p.Drop {
			pl.CountDropped(int(env.Lane))
			return false
		}
	}
	return true
}

// runEgress executes the version's egress slots; a survivor counts as
// processed.
func (v *progVersion) runEgress(pl *pipeline.Pipeline, p *pkt.Packet, env *tsp.Env) bool {
	for i := range v.egress {
		sl := &v.egress[i]
		sl.t.ProcessWith(sl.stages, p, v.design.Parser, v, env)
		if p.Drop {
			pl.CountDropped(int(env.Lane))
			return false
		}
	}
	pl.CountProcessed(int(env.Lane))
	return true
}

// runIngressBatch executes the version's ingress slots over a whole
// batch, stage-major (every live packet passes through one TSP's stages
// before any packet advances to the next TSP). Dropped packets stay in
// their slots with Drop set — later stages skip them — and are counted
// here once the sweep finishes. Callers pass only fresh, live packets;
// nil slots are skipped.
func (v *progVersion) runIngressBatch(pl *pipeline.Pipeline, ps []*pkt.Packet, env *tsp.Env) {
	for i := range v.ingress {
		sl := &v.ingress[i]
		sl.t.ProcessBatchWith(sl.stages, ps, v.design.Parser, v, env)
	}
	for _, p := range ps {
		if p != nil && p.Drop {
			pl.CountDropped(int(env.Lane))
		}
	}
}

// runEgressBatch is the egress half of the batch traversal. Callers pass
// only packets that survived ingress and TM admission (nil slots are
// skipped); each survivor counts as processed, each egress drop as
// dropped — the batch analogue of runEgress's accounting.
func (v *progVersion) runEgressBatch(pl *pipeline.Pipeline, ps []*pkt.Packet, env *tsp.Env) {
	for i := range v.egress {
		sl := &v.egress[i]
		sl.t.ProcessBatchWith(sl.stages, ps, v.design.Parser, v, env)
	}
	for _, p := range ps {
		if p == nil {
			continue
		}
		if p.Drop {
			pl.CountDropped(int(env.Lane))
		} else {
			pl.CountProcessed(int(env.Lane))
		}
	}
}

// process is the synchronous full traversal: ingress, TM pass-through,
// egress — the epoch-pinned analogue of pipeline.Process.
func (v *progVersion) process(pl *pipeline.Pipeline, p *pkt.Packet, env *tsp.Env) bool {
	if !v.runIngress(pl, p, env) {
		return false
	}
	if !pl.TM().PassThrough(p) {
		pl.CountDropped(int(env.Lane))
		return false
	}
	return v.runEgress(pl, p, env)
}

// epochStore is the versioned program store: the current version behind
// one atomic pointer plus the retired list awaiting quiescence. cur stays
// nil on switches built with DrainReconfig, which is how the hot paths
// select the legacy drain path with a single atomic load.
type epochStore struct {
	cur atomic.Pointer[progVersion]

	mu        sync.Mutex
	retired   []*progVersion
	epoch     uint64
	reclaimed atomic.Uint64
}

// pin returns the current version with one in-flight reference taken, or
// nil when the store is inactive (drain mode, or nothing published yet).
// The load→add window is benign: a concurrently retired version stays
// valid Go memory, executes correctly, and is reclaimed on a later reap
// once this pin unwinds.
func (st *epochStore) pin() *progVersion {
	v := st.cur.Load()
	if v != nil {
		v.inFlight.Add(1)
	}
	return v
}

// current peeks at the published version without pinning (control path).
func (st *epochStore) current() *progVersion { return st.cur.Load() }

// publish makes v the current version, retires its predecessor and reaps
// any quiesced retirees. Returns the new epoch number.
func (st *epochStore) publish(v *progVersion) uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.epoch++
	v.epoch = st.epoch
	if old := st.cur.Swap(v); old != nil {
		st.retired = append(st.retired, old)
	}
	st.reapLocked()
	return v.epoch
}

// reap frees retired versions whose in-flight count drained to zero.
func (st *epochStore) reap() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.reapLocked()
}

func (st *epochStore) reapLocked() {
	kept := st.retired[:0]
	for _, v := range st.retired {
		if v.quiesced() {
			st.reclaimed.Add(1)
			continue
		}
		kept = append(kept, v)
	}
	for i := len(kept); i < len(st.retired); i++ {
		st.retired[i] = nil // release for GC
	}
	st.retired = kept
}

// stats snapshots the store after a reap pass.
func (st *epochStore) stats() (epoch uint64, retired int, reclaimed uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.reapLocked()
	return st.epoch, len(st.retired), st.reclaimed.Load()
}

// EpochStats reports the program store's epoch counter, the retired
// versions still awaiting quiescent packets, and the total reclaimed.
// All zero on drain-mode switches.
func (s *Switch) EpochStats() (epoch uint64, retired int, reclaimed uint64) {
	return s.epochs.stats()
}

// stageSignature canonically describes one stage's compiled content: the
// stage template, the actions its arms reference and the tables it
// applies, plus the INT flag (the stamping epilogue is compiled in).
// Equal signatures across configs mean the compiled runtime is
// bit-identical and can be shared across epochs.
func stageSignature(cfg *template.Config, sn string, intOn bool) string {
	st := cfg.Stages[sn]
	sub := template.Config{
		Stages:  map[string]*template.Stage{sn: st},
		Actions: map[string]*template.Action{},
		Tables:  map[string]*template.Table{},
	}
	for _, arm := range st.Arms {
		sub.Actions[arm.Action] = cfg.Actions[arm.Action]
	}
	for _, tn := range st.Tables {
		sub.Tables[tn] = cfg.Tables[tn]
	}
	// Compact marshal: signatures are compared, never stored or read, so
	// the indented on-disk form would only cost encoder time.
	b, _ := json.Marshal(&sub)
	if intOn {
		return string(b) + "\x01int"
	}
	return string(b)
}

// stageUsesTables reports whether stage sn applies any table in names.
func stageUsesTables(cfg *template.Config, sn string, names map[string]bool) bool {
	if len(names) == 0 {
		return false
	}
	for _, tn := range cfg.Stages[sn].Tables {
		if names[tn] {
			return true
		}
	}
	return false
}

// applyHitless is the epoch-versioned apply: it performs the same
// register/table reconciliation as the legacy path, compiles only the
// stages whose structural hash changed, and publishes the result as a
// new program version — without ever excluding packet readers. Called
// with s.mu held.
func (s *Switch) applyHitless(cfg *template.Config, start time.Time) (*ctrlplane.ApplyStats, error) {
	var old *template.Config
	if d := s.dp.Design(); d != nil {
		old = d.Cfg
	}
	stats := &ctrlplane.ApplyStats{Full: old == nil, Hitless: true}
	kind := "apply_full"
	patchDirected := old != nil && cfg.Patch != nil && s.opts.Crossbar == mem.FullCrossbar
	if old != nil {
		kind = "apply_diff"
		if patchDirected {
			kind = "apply_patch"
		}
	}
	// A patch manifest is a contract; reject a bad one before touching
	// any state so the device keeps forwarding on the old program.
	if patchDirected {
		for _, idx := range cfg.Patch.RewrittenTSPs {
			if idx < 0 || idx >= s.pl.NumTSPs() {
				return nil, fmt.Errorf("ipbm: patch rewrites TSP %d outside [0,%d)", idx, s.pl.NumTSPs())
			}
		}
		for _, name := range cfg.Patch.NewTables {
			if _, ok := cfg.Tables[name]; !ok {
				return nil, fmt.Errorf("ipbm: patch creates unknown table %q", name)
			}
		}
	}
	hash := configHash(cfg)
	inFlight := s.tmDepthSum()
	verdictsBefore := s.tel.verdictSnapshot()

	// 1. Registers: additive, contents preserved.
	if err := s.regs.Update(cfg.Registers); err != nil {
		return nil, err
	}

	// 2. Tables: create new, drop removed, migrate moved. Any table whose
	// storage identity changed this apply poisons stage reuse below — a
	// resolved handle bound in a previous epoch must never alias a
	// recreated table.
	changed := make(map[string]bool)
	tspOfTable := func(c *template.Config, name string) int {
		for sn, st := range c.Stages {
			for _, tn := range st.Tables {
				if tn == name {
					return c.TSPAssignment[sn]
				}
			}
		}
		return 0
	}
	for name, t := range cfg.Tables {
		if _, ok := s.mm.Table(name); ok {
			if old != nil {
				oldTSP, newTSP := tspOfTable(old, name), tspOfTable(cfg, name)
				if oldTSP != newTSP {
					moved, err := s.mm.Migrate(name, newTSP)
					if err != nil {
						return nil, err
					}
					stats.EntriesMigrated += moved
					changed[name] = true
				}
			}
			continue
		}
		kind, err := match.ParseKind(t.Kind)
		if err != nil {
			return nil, err
		}
		if _, err := s.mm.CreateTable(name, kind, t.KeyWidth, t.Size, tspOfTable(cfg, name)); err != nil {
			return nil, err
		}
		stats.TablesCreated++
		changed[name] = true
		if t.IsSelector {
			s.selectors[name] = newSelectorTable()
		}
	}
	if old != nil {
		for name := range old.Tables {
			if _, stays := cfg.Tables[name]; !stays {
				if err := s.mm.DropTable(name); err != nil {
					return nil, err
				}
				delete(s.selectors, name)
				stats.TablesDropped++
				changed[name] = true
			}
		}
	}

	// 3. TSPsWritten keeps its legacy meaning — how many TSP programs the
	// new configuration changes — so the Table 1 update-cost comparison
	// and the patch manifest check stay valid across both modes.
	if patchDirected {
		stats.TSPsWritten = len(cfg.Patch.RewrittenTSPs)
	} else {
		for i := 0; i < s.pl.NumTSPs(); i++ {
			oldSig := ""
			if old != nil {
				oldSig = tspSignature(old, i)
			}
			if tspSignature(cfg, i) != oldSig {
				stats.TSPsWritten++
			}
		}
	}

	// 4. Publish the refreshed handle view, the design snapshot and (when
	// enabled) the INT state. New packets pick these up; packets pinned to
	// an older version keep executing against its frozen view.
	s.rebuildLookups()
	s.dp.Install(cfg, s.regs)
	if s.intOn {
		s.publishIntState(cfg)
	}

	// 5. Compile (with cross-epoch reuse) and publish the new version.
	pub, err := s.publishProgram(cfg, changed, kind, hash)
	if err != nil {
		return nil, err
	}
	stats.StagesRecompiled, stats.StagesReused = pub.recompiled, pub.reused
	stats.SelectorMoved = pub.selectorMoved
	stats.Epoch = pub.epoch

	stats.LoadNanos = int64(time.Since(start))
	switch kind {
	case "apply_full":
		s.tel.appliesFull.Inc()
	case "apply_patch":
		s.tel.appliesPatch.Inc()
	default:
		s.tel.appliesDiff.Inc()
	}
	s.tel.tspsWritten.Add(uint64(stats.TSPsWritten))
	s.tel.migrated.Add(uint64(stats.EntriesMigrated))
	s.tel.Events.Append(telemetry.Event{
		Kind:             kind,
		ConfigHash:       hash,
		TSPsWritten:      stats.TSPsWritten,
		TablesCreated:    stats.TablesCreated,
		TablesDropped:    stats.TablesDropped,
		DrainNanos:       0, // hitless: no packet was ever blocked
		Hitless:          true,
		Epoch:            stats.Epoch,
		StagesRecompiled: stats.StagesRecompiled,
		StagesReused:     stats.StagesReused,
		InFlight:         inFlight,
		VerdictDeltas:    s.tel.verdictDeltas(verdictsBefore),
	})
	s.log.Debug("configuration applied hitless",
		"kind", kind, "config_hash", hash, "epoch", stats.Epoch,
		"tsps_written", stats.TSPsWritten,
		"stages_recompiled", stats.StagesRecompiled,
		"stages_reused", stats.StagesReused,
		"tables_created", stats.TablesCreated,
		"tables_dropped", stats.TablesDropped,
		"entries_migrated", stats.EntriesMigrated,
		"in_flight", inFlight)
	return stats, nil
}

// publishResult summarizes one publishProgram call.
type publishResult struct {
	epoch              uint64
	recompiled, reused int
	selectorMoved      bool
	// tspsLoaded counts physical TSPs that received a program under the
	// new version (SetInt reports it as its rewrite count).
	tspsLoaded int
}

// publishProgram compiles cfg's stages — reusing the current version's
// runtimes where the structural hash matches and no table in changed was
// touched — refreshes the pipeline's bookkeeping, assembles the new
// progVersion and publishes it. The caller must already have published
// the design snapshot, lookup view and INT state this version should
// capture, and must hold s.mu. kind/hash feed the health monitor's
// retirement watch for the superseded version.
func (s *Switch) publishProgram(cfg *template.Config, changed map[string]bool, kind, hash string) (publishResult, error) {
	var pub publishResult
	prev := s.epochs.current()

	sigs := make(map[string]string, len(cfg.Stages))
	built := make(map[string]*tsp.StageRuntime, len(cfg.Stages))
	names := make([]string, 0, len(cfg.Stages))
	for sn := range cfg.Stages {
		names = append(names, sn)
	}
	sort.Strings(names)
	for _, sn := range names {
		sig := stageSignature(cfg, sn, s.intOn)
		sigs[sn] = sig
		if prev != nil && prev.sigs[sn] == sig && prev.built[sn] != nil &&
			!stageUsesTables(cfg, sn, changed) {
			built[sn] = prev.built[sn]
			pub.reused++
			continue
		}
		sr, err := tsp.NewStageRuntimeOpts(cfg, sn, tsp.BuildOpts{Mode: s.opts.Exec, Int: s.intOn})
		if err != nil {
			return pub, err
		}
		sr.Bind(s)
		built[sn] = sr
		pub.recompiled++
	}

	// Refresh the pipeline's TSP bookkeeping and selector. On the hitless
	// path no packet holds the pipeline's read lock, so Commit is
	// uncontended metadata maintenance (scrape-time stats, ActiveTSPs),
	// not a drain — nothing is charged to StallTime.
	n := s.pl.NumTSPs()
	perTSP := make([][]*tsp.StageRuntime, n)
	tmIn, tmOut := -1, n
	for i := 0; i < n; i++ {
		for _, sn := range orderedStagesOf(cfg, i) {
			perTSP[i] = append(perTSP[i], built[sn])
			switch cfg.Stages[sn].Pipe {
			case "ingress":
				if i > tmIn {
					tmIn = i
				}
			case "egress":
				if i < tmOut {
					tmOut = i
				}
			}
		}
	}
	err := s.pl.Commit(func(sel *pipeline.Selector, tsps []*tsp.TSP) error {
		for i := range tsps {
			if len(perTSP[i]) == 0 {
				if tsps[i].Active() {
					tsps[i].Unload()
				}
			} else {
				tsps[i].Load(perTSP[i])
				pub.tspsLoaded++
			}
		}
		if sel.TMIn != tmIn || sel.TMOut != tmOut {
			pub.selectorMoved = true
		}
		sel.TMIn, sel.TMOut = tmIn, tmOut
		return nil
	})
	if err != nil {
		return pub, err
	}

	// Assemble and publish the version; its predecessor is retired and
	// reclaimed once its last pinned packet finishes. The health monitor
	// watches that retirement the way it used to watch the drain deadline.
	v := &progVersion{
		design:  s.dp.Design(),
		lookups: s.lookups.Load(),
		sink:    s.intSinkP.Load(),
		sigs:    sigs,
		built:   built,
	}
	for i := 0; i <= tmIn; i++ {
		if len(perTSP[i]) > 0 {
			t, _ := s.pl.TSP(i)
			v.ingress = append(v.ingress, epochSlot{t: t, stages: perTSP[i]})
		}
	}
	for i := tmOut; i < n; i++ {
		if len(perTSP[i]) > 0 {
			t, _ := s.pl.TSP(i)
			v.egress = append(v.egress, epochSlot{t: t, stages: perTSP[i]})
		}
	}
	pub.epoch = s.epochs.publish(v)
	if prev != nil {
		s.health.BeginOpWatch(kind, hash, prev.quiesced)
	}
	return pub, nil
}

// runEpoch is the synchronous per-packet lifecycle against a pinned
// version: telemetry begin, version-consistent pipeline, punt, out-port
// surfacing, telemetry finish — the epoch analogue of run().
func (s *Switch) runEpoch(v *progVersion, p *pkt.Packet, env *tsp.Env) bool {
	s.dp.BeginPacket(p)
	if p.Trace != nil {
		p.Trace.Epoch = v.epoch
	}
	env.Trace = p.Trace
	env.Timed = p.Timed
	ok := v.process(s.pl, p, env)
	if p.ToCPU {
		s.punt(p)
	}
	if ok {
		dataplane.SurfaceOutPort(p)
		if v.sink != nil && !p.Drop {
			v.sink.process(p)
		}
	}
	s.dp.FinishPacket(p, dataplane.Verdict(p, ok, s.ports.Len()))
	return ok
}
