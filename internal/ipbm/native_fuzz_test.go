package ipbm

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ipsa/internal/compiler/backend"
	"ipsa/internal/pkt"
	"ipsa/internal/rp4/parser"
)

var (
	fuzzOnce sync.Once
	fuzzSw   *Switch
)

// fuzzBringUp builds a populated switch with the SRv6 design, without any
// testing.T plumbing so it can run inside the fuzz engine's worker.
func fuzzBringUp() *Switch {
	read := func(name string) (string, error) {
		b, err := os.ReadFile(filepath.Join("../../testdata", name))
		return string(b), err
	}
	src, err := read("base_l2l3.rp4")
	if err != nil {
		return nil
	}
	prog, err := parser.Parse("base_l2l3.rp4", src)
	if err != nil {
		return nil
	}
	opts := backend.DefaultOptions()
	opts.NumTSPs = 16
	w, err := backend.NewWorkspace(prog, opts)
	if err != nil {
		return nil
	}
	scriptSrc, err := read("srv6.script")
	if err != nil {
		return nil
	}
	rep, err := w.ApplyScript(scriptSrc, read)
	if err != nil {
		return nil
	}
	sw, err := New(DefaultOptions())
	if err != nil {
		return nil
	}
	if _, err := sw.ApplyConfig(rep.Config); err != nil {
		return nil
	}
	return sw
}

// FuzzDataPath is a native fuzz target over the packet pipeline with the
// SRv6 design loaded (the largest parsing surface). Under plain `go test`
// the seed corpus runs as regression tests.
func FuzzDataPath(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{0x02, 0, 0, 0, 0, 1}, uint8(1))
	valid, _ := pkt.Serialize(
		&pkt.Ethernet{Dst: routerMAC, Src: hostMAC, EtherType: pkt.EtherTypeIPv6},
		&pkt.IPv6{NextHeader: pkt.IPProtoRouting, HopLimit: 64},
		&pkt.SRH{NextHeader: pkt.IPProtoTCP, SegmentsLeft: 1, Segments: [][16]byte{{1}, {2}}},
		&pkt.TCP{SrcPort: 1, DstPort: 2},
	)
	f.Add(valid, uint8(1))
	v4 := []byte{
		0x02, 0, 0, 0, 0, 0x01, 0x02, 0, 0, 0, 0, 0x02, 0x08, 0x00,
		0x45, 0, 0, 20, 0, 0, 0, 0, 64, 6, 0, 0, 10, 0, 0, 1, 10, 0, 0, 2,
	}
	f.Add(v4, uint8(1))

	f.Fuzz(func(t *testing.T, data []byte, port uint8) {
		fuzzOnce.Do(func() { fuzzSw = fuzzBringUp() })
		if fuzzSw == nil {
			t.Skip("switch bring-up failed")
		}
		if _, err := fuzzSw.ProcessPacket(data, int(port)%8); err != nil {
			t.Fatalf("ProcessPacket errored on fuzz input: %v", err)
		}
	})
}
