package ipbm

import (
	"testing"
	"time"

	"ipsa/internal/ctrlplane"
)

// The switch is the CCM's flow source.
var _ ctrlplane.FlowSource = (*Switch)(nil)

// flowVerdictSum reads ipsa_packets_total across all verdict labels —
// the right-hand side of the flow-conservation invariant.
func flowVerdictSum(sw *Switch) uint64 {
	var sum uint64
	for _, c := range sw.tel.verdictCounters() {
		sum += c.Value()
	}
	return sum
}

// TestFlowConservationSharded pins the tentpole's accounting invariant:
// after a sharded soak quiesces and the switch shuts down (flushing
// every live flow into a record), the packet mass carried by flow
// records equals ipsa_packets_total — nothing counted twice, nothing
// lost to evictions, ring hand-off or shutdown.
func TestFlowConservationSharded(t *testing.T) {
	sw, _ := newBaseSwitch(t)
	if err := sw.RunSharded(4, 4); err != nil {
		t.Fatal(err)
	}
	in, _ := sw.Ports().Port(inPort)
	out, _ := sw.Ports().Port(outPort)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				if _, ok := out.Drain(); !ok {
					time.Sleep(100 * time.Microsecond)
				}
			}
		}
	}()

	accepted := uint64(0)
	for i := 0; i < 800; i++ {
		var frame []byte
		if i%7 == 6 {
			// Unrouted destination: the packet is dropped but its flow is
			// still accounted.
			frame = v4Packet(t, [4]byte{192, 168, 0, byte(i)}, routerMAC, 64)
		} else {
			frame = flowPacket(t, uint16(5000+i%32), uint32(i))
		}
		if in.Inject(frame) {
			accepted++
		} else {
			time.Sleep(100 * time.Microsecond)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for flowVerdictSum(sw) < accepted {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d packets reached a verdict", flowVerdictSum(sw), accepted)
		}
		time.Sleep(time.Millisecond)
	}
	close(done)
	sw.Shutdown() // flushes every live flow into the record stream

	verdicts := flowVerdictSum(sw)
	if verdicts != accepted {
		t.Fatalf("verdicts %d != accepted %d", verdicts, accepted)
	}
	if got := sw.Flows().RecordPackets(); got != verdicts {
		t.Fatalf("flow records carry %d packets, ipsa_packets_total = %d (conservation violated)",
			got, verdicts)
	}
	// The records describe real flows: at least the 32 routed flows plus
	// the unrouted strays, with tuples attached.
	recs := sw.FlowRecords(0)
	if len(recs) < 32 {
		t.Fatalf("only %d flow records emitted", len(recs))
	}
	tupled := 0
	for _, r := range recs {
		if r.Src != "" {
			tupled++
		}
	}
	if tupled == 0 {
		t.Error("no flow record carries a five-tuple")
	}
}

// TestFlowStateSurvivesReconfig is the reconfig-storm soak: hitless edit
// commits race sharded traffic, and flow accounting must (a) keep its
// conservation invariant and (b) carry live flow state across epochs —
// the tables live beside the program store, not inside it.
func TestFlowStateSurvivesReconfig(t *testing.T) {
	edits := 200
	if testing.Short() {
		edits = 30
	}
	sw, _ := newBaseSwitch(t)
	if err := sw.RunSharded(2, 4); err != nil {
		t.Fatal(err)
	}
	in, _ := sw.Ports().Port(inPort)
	out, _ := sw.Ports().Port(outPort)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				if _, ok := out.Drain(); !ok {
					time.Sleep(100 * time.Microsecond)
				}
			}
		}
	}()

	// Seed a long-lived flow and note its identity.
	seedAccepted := uint64(0)
	for i := 0; i < 50; i++ {
		if in.Inject(flowPacket(t, 7777, uint32(i+1))) {
			seedAccepted++
		}
	}
	waitFor := func(n uint64) {
		deadline := time.Now().Add(10 * time.Second)
		for flowVerdictSum(sw) < n {
			if time.Now().After(deadline) {
				t.Fatalf("only %d/%d packets reached a verdict", flowVerdictSum(sw), n)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFor(seedAccepted)
	created0 := flowCreated(sw)
	if created0 == 0 {
		t.Fatal("seed flow never entered a flow table")
	}

	// Storm: edit commits while traffic keeps flowing.
	stop := make(chan struct{})
	accepted := make(chan uint64, 1)
	go func() {
		n := seedAccepted
		i := 0
		for {
			select {
			case <-stop:
				accepted <- n
				return
			default:
			}
			if in.Inject(flowPacket(t, uint16(7777+i%8), uint32(1000+i))) {
				n++
			} else {
				time.Sleep(50 * time.Microsecond)
			}
			i++
		}
	}()
	for i := 0; i < edits; i++ {
		if err := sw.EditBegin(); err != nil {
			t.Fatal(err)
		}
		op := ctrlplane.EditOp{Kind: "set_table", Table: "flow_scratch", TableSpec: scratchTable("flow_scratch")}
		if i%2 == 1 {
			op = ctrlplane.EditOp{Kind: "delete_table", Table: "flow_scratch"}
		}
		if err := sw.EditApply(op); err != nil {
			t.Fatal(err)
		}
		if _, err := sw.EditCommit(); err != nil {
			t.Fatalf("edit %d: %v", i, err)
		}
	}
	close(stop)
	total := <-accepted
	waitFor(total)

	// Continuity: the storm's commits did not reset the accounting — the
	// created counter is monotonic across every epoch publish, and the
	// seed flow's mass is still visible (live or via the sketch).
	if created := flowCreated(sw); created < created0 {
		t.Errorf("flow tables reset across reconfig: created %d -> %d", created0, created)
	}
	hh := sw.HHDump(0)
	if len(hh) == 0 {
		t.Fatal("no heavy hitters after the storm")
	}
	var seedMass uint64
	for _, h := range hh {
		if h.SrcPort == 7777 {
			seedMass += h.Packets
		}
	}
	if seedMass == 0 {
		t.Error("seed flow's mass vanished across the reconfig storm")
	}

	close(done)
	sw.Shutdown()
	if got, want := sw.Flows().RecordPackets(), flowVerdictSum(sw); got != want {
		t.Fatalf("flow records carry %d packets, verdicts = %d (conservation violated under reconfig)",
			got, want)
	}
}

// flowCreated sums the created counter across lanes via the metrics
// collector — the same series ipsa_flow_created_total exports.
func flowCreated(sw *Switch) uint64 {
	for _, p := range sw.Telemetry().Reg.Gather() {
		if p.Name == "ipsa_flow_created_total" {
			return uint64(p.Value)
		}
	}
	return 0
}

// TestFlowCCMRoundTrip drives the control surface end to end in-process:
// flow_dump, flow_records and hh_dump through the CCM Handle path, on
// the synchronous runner (lane = ingress port).
func TestFlowCCMRoundTrip(t *testing.T) {
	sw, _ := newBaseSwitch(t)
	for i := 0; i < 10; i++ {
		if _, err := sw.ProcessPacket(v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64), inPort); err != nil {
			t.Fatal(err)
		}
	}
	srv := ctrlplane.NewServer(sw, nil)

	resp := srv.Handle(&ctrlplane.Request{Op: ctrlplane.OpFlowDump})
	if !resp.OK || len(resp.Flows) != 1 {
		t.Fatalf("flow_dump: ok=%v flows=%d err=%q", resp.OK, len(resp.Flows), resp.Error)
	}
	f := resp.Flows[0]
	if f.Lane != inPort || f.Packets != 10 || f.Verdict != "forwarded" || f.Src != "10.0.0.1" {
		t.Fatalf("flow_dump record: %+v", f)
	}

	resp = srv.Handle(&ctrlplane.Request{Op: ctrlplane.OpHHDump, Max: 5})
	if !resp.OK || len(resp.Hitters) != 1 || resp.Hitters[0].Packets != 10 || !resp.Hitters[0].Live {
		t.Fatalf("hh_dump: ok=%v hitters=%+v", resp.OK, resp.Hitters)
	}

	sw.Shutdown() // flush live flows into records
	resp = srv.Handle(&ctrlplane.Request{Op: ctrlplane.OpFlowRecords})
	if !resp.OK || len(resp.Flows) != 1 || resp.Flows[0].Reason != "flush" {
		t.Fatalf("flow_records: ok=%v flows=%+v", resp.OK, resp.Flows)
	}
}

// TestFlowDisable: the opt-out leaves every surface inert but alive.
func TestFlowDisable(t *testing.T) {
	sw, _ := newBaseSwitchOpts(t, func(o *Options) { o.FlowDisable = true })
	if sw.Flows() != nil {
		t.Fatal("FlowDisable still built a flow set")
	}
	if _, err := sw.ProcessPacket(v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64), inPort); err != nil {
		t.Fatal(err)
	}
	if got := sw.FlowDump(0); got != nil {
		t.Errorf("FlowDump on disabled accounting = %v", got)
	}
	srv := ctrlplane.NewServer(sw, nil)
	if resp := srv.Handle(&ctrlplane.Request{Op: ctrlplane.OpFlowDump}); !resp.OK || len(resp.Flows) != 0 {
		t.Errorf("flow_dump on disabled accounting: ok=%v flows=%d", resp.OK, len(resp.Flows))
	}
	sw.Shutdown()
}

// TestTraceEpochStamp: sampled flight records carry the program-store
// epoch they executed under, across a hitless edit.
func TestTraceEpochStamp(t *testing.T) {
	sw, _ := newBaseSwitchOpts(t, func(o *Options) { o.TraceEvery = 1 })
	if _, err := sw.ProcessPacket(v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64), inPort); err != nil {
		t.Fatal(err)
	}
	traces := sw.TraceDump(1)
	if len(traces) != 1 || traces[0].Epoch != 1 {
		t.Fatalf("pre-edit trace epoch = %+v, want epoch 1", traces)
	}
	if err := sw.EditBegin(); err != nil {
		t.Fatal(err)
	}
	if err := sw.EditApply(ctrlplane.EditOp{Kind: "set_table", Table: "trace_scratch", TableSpec: scratchTable("trace_scratch")}); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.EditCommit(); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.ProcessPacket(v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64), inPort); err != nil {
		t.Fatal(err)
	}
	traces = sw.TraceDump(1)
	if len(traces) != 1 || traces[0].Epoch != 2 {
		t.Fatalf("post-edit trace epoch = %d, want 2", traces[0].Epoch)
	}
}

// TestFlowMetricsExported: the ipsa_flow_* series ride the shared
// registry next to everything else the switch exports.
func TestFlowMetricsExported(t *testing.T) {
	sw, _ := newBaseSwitch(t)
	for i := 0; i < 5; i++ {
		if _, err := sw.ProcessPacket(v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64), inPort); err != nil {
			t.Fatal(err)
		}
	}
	want := map[string]bool{
		"ipsa_flow_active_total":   false,
		"ipsa_flow_created_total":  false,
		"ipsa_flow_table_slots":    false,
		"ipsa_flow_sketch_epsilon": false,
		"ipsa_build_info":          false,
		"ipsa_go_goroutines":       false,
	}
	var active, created float64
	for _, p := range sw.Telemetry().Reg.Gather() {
		if _, ok := want[p.Name]; ok {
			want[p.Name] = true
		}
		switch p.Name {
		case "ipsa_flow_active_total":
			active = p.Value
		case "ipsa_flow_created_total":
			created = p.Value
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("series %s missing from scrape", name)
		}
	}
	if active != 1 || created != 1 {
		t.Errorf("active=%v created=%v, want 1/1", active, created)
	}
}

// TestFlowLatencySampled: timed packets contribute latency samples to
// their flow entry.
func TestFlowLatencySampled(t *testing.T) {
	sw, _ := newBaseSwitchOpts(t, func(o *Options) { o.LatencyEvery = 1 })
	for i := 0; i < 4; i++ {
		if _, err := sw.ProcessPacket(v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64), inPort); err != nil {
			t.Fatal(err)
		}
	}
	recs := sw.FlowDump(0)
	if len(recs) != 1 {
		t.Fatalf("flows = %d", len(recs))
	}
	if recs[0].LatSamples == 0 || recs[0].LatAvgNanos <= 0 {
		t.Errorf("no latency sampled: %+v", recs[0])
	}
}
