package ipbm

// reconfig_bench_test.go measures forwarding behaviour *during* a
// reconfiguration storm — the experiment behind the hitless-vs-drain
// comparison in EXPERIMENTS.md. A closed-loop injector pushes flow
// traffic through the sharded runner while a storm goroutine commits
// one edit script every editEvery frames (pacing by frames makes the
// applies-per-run count host-speed independent); every frame carries
// its identity in the TCP sequence field, so egress observation yields
// true per-packet forwarding latency and an exact drop count.
//
// `make bench-reconfig` gates the hitless variant against
// BENCH_reconfig.json: drops and pipeline stall must stay exactly zero.

import (
	"runtime"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"ipsa/internal/ctrlplane"
	"ipsa/internal/pkt"
)

const (
	// stormRing is the frame-identity space: a slot is reused only after
	// stormRing further injections, far beyond the in-flight window, so
	// a TCP sequence number uniquely names one in-flight frame.
	stormRing = 4096
	// stormWindow bounds frames in flight (closed loop): small enough
	// that the switch's queues never overflow from harness pressure
	// alone, large enough to keep every shard busy.
	stormWindow = 64
	// editEvery frames, one edit-script commit. At software-switch rates
	// this is hundreds of commits per second — well past the 100/s storm
	// the experiment calls for.
	editEvery = 2000
	// stormWarmup frames run before the timed region, storm-free, to
	// warm pools and measure the steady-state latency baseline.
	stormWarmup = 20000
)

// stormHarness drives closed-loop phases over a fixed frame ring and
// accounts for every frame: emerged at a port, or dropped in-switch.
type stormHarness struct {
	sw       *Switch
	inject   func([]byte) bool
	times    [stormRing]atomic.Int64
	lats     []int64
	received atomic.Uint64
	injected atomic.Uint64
	commits  atomic.Uint64
}

// inSwitchDrops sums the verdict counters that account for a frame
// without it emerging at a port.
func (h *stormHarness) inSwitchDrops() uint64 {
	t := h.sw.tel
	return t.vDropped.Value() + t.vTmDrop.Value() + t.vNoPort.Value()
}

// runPhase injects nFrames in a closed loop, committing one scratch
// edit per editEvery frames when storm is true, and waits until every
// frame is accounted (emerged or dropped in-switch).
func (h *stormHarness) runPhase(b *testing.B, frames, pristine [][]byte, nFrames int, storm bool) {
	b.Helper()
	stop := make(chan struct{})
	stormDone := make(chan struct{})
	if storm {
		go func() {
			defer close(stormDone)
			n := 0
			base := h.injected.Load()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if h.injected.Load()-base < uint64((n+1)*editEvery) {
					runtime.Gosched()
					continue
				}
				op := ctrlplane.EditOp{Kind: "set_table", Table: "storm_scratch", TableSpec: scratchTable("storm_scratch")}
				if n%2 == 1 {
					op = ctrlplane.EditOp{Kind: "delete_table", Table: "storm_scratch"}
				}
				if err := h.sw.EditBegin(); err != nil {
					b.Error(err)
					return
				}
				if err := h.sw.EditApply(op); err != nil {
					b.Error(err)
					return
				}
				if _, err := h.sw.EditCommit(); err != nil {
					b.Error(err)
					return
				}
				h.commits.Add(1)
				n++
			}
		}()
	} else {
		close(stormDone)
	}
	startInjected := h.injected.Load()
	startReceived := h.received.Load()
	startDrops := h.inSwitchDrops()
	completed := func() uint64 {
		return h.received.Load() - startReceived + h.inSwitchDrops() - startDrops
	}
	for i := 0; i < nFrames; i++ {
		for h.injected.Load()-startInjected-completed() >= stormWindow {
			runtime.Gosched()
		}
		// The switch owns the buffer zero-copy from inject to egress and
		// rewrites it in place, so restore the slot's frame from its
		// pristine twin before reusing it. Ring >> window keeps the slot
		// idle by the time it comes around again.
		slot := int(h.injected.Load() % stormRing)
		buf := frames[slot]
		copy(buf, pristine[slot])
		h.times[slot].Store(time.Now().UnixNano())
		for !h.inject(buf) {
			runtime.Gosched()
		}
		h.injected.Add(1)
	}
	deadline := time.Now().Add(60 * time.Second)
	for completed() < uint64(nFrames) {
		if time.Now().After(deadline) {
			b.Fatalf("storm phase never quiesced: %d/%d frames accounted", completed(), nFrames)
		}
		runtime.Gosched()
	}
	close(stop)
	<-stormDone
}

// latP99 returns the 99th-percentile of a latency sample, in ns.
func latP99(lats []int64) float64 {
	if len(lats) == 0 {
		return 0
	}
	s := append([]int64(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return float64(s[len(s)*99/100])
}

// benchmarkReconfigStorm is the shared storm harness; drain selects the
// legacy drain-and-swap fallback for the comparison row.
func benchmarkReconfigStorm(b *testing.B, drain bool) {
	sw, _ := newBaseSwitchOpts(b, func(o *Options) { o.DrainReconfig = drain })
	if err := sw.RunSharded(2, DefaultBatch); err != nil {
		b.Fatal(err)
	}
	defer sw.Shutdown()
	inP, err := sw.Ports().Port(inPort)
	if err != nil {
		b.Fatal(err)
	}
	outP, err := sw.Ports().Port(outPort)
	if err != nil {
		b.Fatal(err)
	}

	// One working buffer and one pristine twin per ring slot. Slot
	// identity rides the TCP sequence field, which the L3 rewrite never
	// touches; the flow hash rides the TCP source port.
	frames := make([][]byte, stormRing)
	pristine := make([][]byte, stormRing)
	for i := range frames {
		pristine[i] = flowPacket(b, uint16(i%64), uint32(i))
		frames[i] = append([]byte(nil), pristine[i]...)
	}
	h := &stormHarness{sw: sw, inject: inP.Inject}
	h.lats = make([]int64, 0, b.N+stormWarmup)

	// Receiver: drain the egress port, recover each frame's slot from
	// its TCP sequence number and record its flight time.
	recvStop := make(chan struct{})
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		for {
			d, ok := outP.Drain()
			if !ok {
				select {
				case <-recvStop:
					return
				default:
					runtime.Gosched()
					continue
				}
			}
			var ip pkt.IPv4
			if ip.Decode(d[pkt.EthernetLen:]) == nil {
				var tcp pkt.TCP
				if tcp.Decode(d[pkt.EthernetLen+int(ip.IHL)*4:]) == nil {
					slot := int(tcp.Seq) % stormRing
					if t0 := h.times[slot].Load(); t0 != 0 {
						h.lats = append(h.lats, time.Now().UnixNano()-t0)
					}
				}
			}
			h.received.Add(1)
		}
	}()
	// Sweeper: keep any stray egress (punt path, other ports) drained
	// and accounted so the closed loop cannot wedge.
	go func() {
		for {
			select {
			case <-recvStop:
				return
			default:
			}
			for i := 0; i < sw.Ports().Len(); i++ {
				if i == outPort {
					continue
				}
				if p, err := sw.Ports().Port(i); err == nil {
					if _, ok := p.Drain(); ok {
						h.received.Add(1)
					}
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Untimed steady-state phase: no storm; its p99 is the baseline the
	// storm p99 is compared against.
	h.runPhase(b, frames, pristine, stormWarmup, false)
	steadyP99 := latP99(h.lats)
	h.lats = h.lats[:0]

	stallBefore := sw.Pipeline().StallTime()
	injectedBefore := h.injected.Load()
	receivedBefore := h.received.Load()
	b.ReportAllocs()
	b.ResetTimer()
	h.runPhase(b, frames, pristine, b.N, true)
	b.StopTimer()
	close(recvStop)
	<-recvDone

	// At quiescence every injected frame was either received at a port
	// or hit a drop verdict, so this difference is the true drop count.
	drops := float64(h.injected.Load() - injectedBefore - (h.received.Load() - receivedBefore))
	applies := float64(h.commits.Load())
	if applies == 0 && b.N >= editEvery {
		b.Errorf("storm committed no edits over %d frames", b.N)
	}
	stormP99 := latP99(h.lats)
	b.ReportMetric(drops, "drops")
	b.ReportMetric(applies, "applies")
	b.ReportMetric(stormP99/1e3, "p99_us")
	b.ReportMetric(steadyP99/1e3, "steady_p99_us")
	if steadyP99 > 0 {
		b.ReportMetric(stormP99/steadyP99, "p99_x")
	}
	b.ReportMetric(float64(sw.Pipeline().StallTime()-stallBefore)/1e3, "stall_us")
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pps")
}

// BenchmarkReconfigStormHitless is the gated experiment: a sharded
// switch forwarding through a continuous edit-script storm on the
// epoch-versioned store. Gate contract: drops == 0 and stall_us == 0.
func BenchmarkReconfigStormHitless(b *testing.B) { benchmarkReconfigStorm(b, false) }

// BenchmarkReconfigStormDrain is the comparison row: the same storm on
// the legacy drain-and-swap fallback. Expect nonzero pipeline stall and
// a storm p99 above steady state.
func BenchmarkReconfigStormDrain(b *testing.B) { benchmarkReconfigStorm(b, true) }
