package ipbm

// health.go wires the switch into the self-diagnosis layer: the
// time-series ring samples the registry plus a few explicitly wired
// collector-backed series, the watchdog lanes are registered by the
// forwarding modes (one per shard worker, one per pipelined egress
// worker), and the reconfiguration paths bracket their drain-and-swap
// critical sections with BeginOp so a wedged drain is reported instead
// of hanging silently.

import (
	"time"

	"ipsa/internal/health"
)

// initHealth builds the monitor. Called from New after newTelemetry; the
// forwarding modes register lanes and Start it.
func (s *Switch) initHealth(opts Options) {
	s.health = health.New(health.Options{
		Registry:         s.tel.Reg,
		Events:           s.tel.Events,
		Log:              s.log.With("component", "health"),
		Interval:         opts.HealthInterval,
		Window:           opts.HealthWindow,
		RingSize:         opts.HealthRing,
		ReconfigDeadline: opts.ReconfigDeadline,
		Packets:          s.packetsTotal,
		Drops:            s.dropsTotal,
		TMDepth:          s.tmDepthSum,
		Ready:            func() bool { return s.dp.Design() != nil },
	})
	// Collector-only series the ring should still rate: pipeline totals
	// and the TM's enqueue/tail-drop counters. Registered handles
	// (ipsa_packets_total{verdict}, ipsa_shard_rx_frames_total, latency
	// histograms, ...) are tracked automatically.
	s.health.AddColumn(health.Column{
		Name: "ipsa_pipeline_processed_total", Kind: "counter",
		Read: func() float64 { p, _ := s.pl.Stats(); return float64(p) },
	})
	s.health.AddColumn(health.Column{
		Name: "ipsa_pipeline_dropped_total", Kind: "counter",
		Read: func() float64 { _, d := s.pl.Stats(); return float64(d) },
	})
	s.health.AddColumn(health.Column{
		Name: "ipsa_tm_enqueued_total", Kind: "counter",
		Read: func() float64 { e, _ := s.TMStats(); return float64(e) },
	})
	s.health.AddColumn(health.Column{
		Name: "ipsa_tm_tail_drops_total", Kind: "counter",
		Read: func() float64 { _, d := s.TMStats(); return float64(d) },
	})
	s.health.AddColumn(health.Column{
		Name: "ipsa_tm_depth", Kind: "gauge",
		Read: func() float64 { return float64(s.tmDepthSum()) },
	})
}

// packetsTotal folds every verdict counter: all packets that finished
// the pipeline, whatever their fate.
func (s *Switch) packetsTotal() uint64 {
	var n uint64
	for _, c := range s.tel.verdictCounters() {
		n += c.Value()
	}
	return n
}

// dropsTotal folds the unexpected losses: TM tail drops, no-egress
// finishes, parse failures and refused transmits. Intentional stage
// drops (reason "acl" — a firewall program doing its job) are excluded
// so a policy-heavy program can never trip the post-reconfig drop-spike
// detector into reporting the switch degraded.
func (s *Switch) dropsTotal() uint64 {
	return s.tel.dropTM.Value() + s.tel.dropNoPort.Value() +
		s.tel.dropParse.Value() + s.tel.dropTxFail.Value()
}

// Health exposes the switch's self-diagnosis layer (rate queries, manual
// checks, the HTTP endpoint registration).
func (s *Switch) Health() *health.Health { return s.health }

// HealthQuery implements ctrlplane.HealthSource: the windowed status the
// CCM health_query op and rp4ctl top consume.
func (s *Switch) HealthQuery(window time.Duration) *health.Status {
	return s.health.Status(window)
}
