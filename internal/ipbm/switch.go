// Package ipbm is the IPSA behavioral model: a software switch conforming
// to the IPSA architecture (paper Sec. 4.1). It assembles four modules:
// the Communication Module (netio ports), the Pipeline Module (elastic
// pipeline of TSPs), the Control Channel Module (ctrlplane server) and the
// Storage Module (disaggregated memory pool). Its defining property is
// that ApplyConfig patches only what changed: TSP templates are rewritten
// individually, existing tables and registers keep their contents, and the
// pipeline stalls only for the duration of the patch.
package ipbm

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ipsa/internal/ctrlplane"
	"ipsa/internal/dataplane"
	"ipsa/internal/flowstat"
	"ipsa/internal/health"
	"ipsa/internal/match"
	"ipsa/internal/mem"
	"ipsa/internal/netio"
	"ipsa/internal/pipeline"
	"ipsa/internal/pkt"
	"ipsa/internal/telemetry"
	"ipsa/internal/template"
	"ipsa/internal/tsp"
)

// Options sizes a switch.
type Options struct {
	NumTSPs    int
	NumPorts   int
	QueueDepth int
	Mem        mem.Config
	Crossbar   mem.CrossbarKind
	// PuntDepth bounds the to-CPU queue.
	PuntDepth int
	// TraceRing sizes the telemetry flight recorder (records retained).
	TraceRing int
	// TraceEvery samples every Nth packet into the flight recorder
	// (0 disables tracing until enabled via the control channel).
	TraceEvery uint64
	// LatencyEvery samples every Nth packet for the per-TSP latency
	// histograms (0 disables latency timing, the default — embedding
	// library users opt in). A sampled packet pays two clock reads plus
	// a histogram update per active TSP; at the ipbm daemon's 1-in-128
	// default that amortizes to well under a percent of a ~2µs forward.
	LatencyEvery uint64
	// Exec selects the stage executor: the compiled flat-program runner
	// (default) or the tree-walking reference interpreter.
	Exec tsp.ExecMode

	// IntSwitchID identifies this switch in INT hop records.
	IntSwitchID uint32
	// IntMaxHops caps the hop records one packet accumulates
	// (0 = the wire format's limit of 255).
	IntMaxHops int
	// IntReportRing sizes the sink's ring of decoded reports.
	IntReportRing int
	// EventRing sizes the reconfiguration audit-event log.
	EventRing int
	// DropRing sizes the sampled drop-capture ring (records retained;
	// 0 = 256). The attributed drop counters are always on regardless.
	DropRing int
	// DropSampleRate bounds drop captures per second (token bucket;
	// 0 disables capture until raised via DropRing.SetRate).
	DropSampleRate int64
	// DropSampleBurst is the capture token bucket's capacity
	// (0 = DropSampleRate).
	DropSampleBurst int64

	// Logger receives the switch's structured logs (nil = slog.Default();
	// the switch adds component attributes).
	Logger *slog.Logger
	// HealthInterval is the health sampler/monitor cadence (0 = 1s;
	// negative disables the background ticker so tests can drive
	// Health().Check with synthetic clocks).
	HealthInterval time.Duration
	// HealthWindow is the default rate window (0 = 10s).
	HealthWindow time.Duration
	// HealthRing is the number of retained rate samples (0 = 120).
	HealthRing int
	// ReconfigDeadline bounds a drain-and-swap (or, in hitless mode, a
	// retired program version's quiescence) before the health monitor
	// reports the reconfiguration wedged (0 = 2s).
	ReconfigDeadline time.Duration

	// FlowTableBits sizes each flow-accounting lane table to 2^bits slots
	// (0 = flowstat's default of 1024).
	FlowTableBits int
	// FlowIdle is the idle bound past which the sweeper exports a flow as
	// a record (0 = flowstat's default of 2s).
	FlowIdle time.Duration
	// FlowTopK sizes each lane's space-saving heavy-hitter summary
	// (0 = default 16).
	FlowTopK int
	// FlowSketchWidth/FlowSketchDepth size each lane's count-min sketch
	// of evicted flow mass (0 = defaults 1024x4; width rounds up to a
	// power of two, point-estimate error ε = e/width).
	FlowSketchWidth int
	FlowSketchDepth int
	// FlowRecordRing sizes the shared exported-flow-record ring
	// (0 = default 2048).
	FlowRecordRing int
	// FlowDisable turns flow accounting off entirely (it is on by
	// default; the overhead benchmarks use this for the comparison).
	FlowDisable bool

	// DrainReconfig selects the legacy drain-and-swap reconfiguration
	// path: ApplyConfig/SetInt exclude packet readers while templates are
	// rewritten in place. The default (false) is the hitless
	// epoch-versioned program store, where packets pin the version they
	// entered under and updates never block traffic. The drain path is
	// kept for the PISA-style comparison (pisa itself always drains) and
	// as a measurable baseline for the reconfig-storm benchmark.
	DrainReconfig bool
}

// DefaultOptions returns a software-scale switch: more TSPs than the
// paper's 8-processor FPGA so that every use case fits even when header
// linkage defeats predicate merging.
func DefaultOptions() Options {
	return Options{
		NumTSPs:    16,
		NumPorts:   8,
		QueueDepth: 1024,
		Mem:        mem.DefaultConfig(),
		Crossbar:   mem.FullCrossbar,
		PuntDepth:  256,

		TraceRing:    256,
		TraceEvery:   0,
		LatencyEvery: 0,

		IntSwitchID:   1,
		IntReportRing: 256,
		EventRing:     256,

		DropRing:       256,
		DropSampleRate: 64,
	}
}

// Switch is one ipbm instance.
type Switch struct {
	opts Options

	pl    *pipeline.Pipeline
	mm    *mem.Manager
	ports *netio.PortSet
	regs  *tsp.RegisterFile

	// dp holds the per-packet execution state: the installed design as an
	// atomic snapshot (the hot path never takes s.mu), fault counters and
	// the packet/Env pools.
	dp *dataplane.Core

	// mu serializes configuration changes and guards the selector map.
	mu        sync.RWMutex
	selectors map[string]*selectorTable

	// lookups is the hot path's view of the table store: resolved
	// handles keyed by name, swapped atomically whenever a config apply
	// or patch creates, drops or migrates tables. Per-packet lookups
	// never touch the memory manager's mutex.
	lookups atomic.Pointer[lookupSnapshot]

	// epochs is the versioned program store (hitless mode). Its current
	// pointer stays nil on DrainReconfig switches, which is how every hot
	// path selects between the epoch-pinned and legacy execution with a
	// single atomic load.
	epochs epochStore

	// edit is the open edit-script session, if any (guarded by s.mu).
	edit *editSession

	toCPU  chan *pkt.Packet
	punted atomic.Uint64

	tel    *Telemetry
	log    *slog.Logger
	health *health.Health

	// intOn is the configured INT state (guarded by s.mu); the hot path
	// reads the derived atomic state instead: the stamping context lives
	// in the dataplane core, the sink behind intSinkP.
	intOn    bool
	intSinkP atomic.Pointer[intSink]
	// intNow/intDepth override the stamper's clock and queue-depth
	// sources (tests inject deterministic ones); nil = real sources.
	intNow   func() int64
	intDepth func(port int) int

	// flows is the always-on flow accounting engine (nil only with
	// Options.FlowDisable): per-lane flow tables riding the shard workers
	// in sharded mode and the per-port runners in synchronous mode, plus
	// the shared flow-record ring. Orthogonal to the program store, so
	// flow state survives hitless edit commits and config applies.
	flows *flowstat.Set

	// shardsP is the sharded mode's published state (nil unless
	// RunSharded is active): scrape-time aggregation, the INT queue-depth
	// source and the in-flight audit all read it lock-free.
	shardsP atomic.Pointer[shardSet]

	runWG   sync.WaitGroup
	stopped atomic.Bool
}

// New builds an unconfigured switch.
func New(opts Options) (*Switch, error) {
	if opts.NumTSPs <= 0 || opts.NumPorts <= 0 {
		return nil, fmt.Errorf("ipbm: invalid sizing %+v", opts)
	}
	pl, err := pipeline.New(opts.NumTSPs, opts.NumPorts, opts.QueueDepth)
	if err != nil {
		return nil, err
	}
	mm, err := mem.NewManager(opts.Mem, opts.Crossbar, opts.NumTSPs)
	if err != nil {
		return nil, err
	}
	ports, err := netio.NewPortSet(opts.NumPorts, opts.QueueDepth)
	if err != nil {
		return nil, err
	}
	puntDepth := opts.PuntDepth
	if puntDepth <= 0 {
		puntDepth = 256
	}
	s := &Switch{
		opts:      opts,
		pl:        pl,
		mm:        mm,
		ports:     ports,
		regs:      tsp.NewRegisterFile(nil),
		dp:        dataplane.NewCore(),
		selectors: make(map[string]*selectorTable),
		toCPU:     make(chan *pkt.Packet, puntDepth),
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	s.log = logger.With("component", "ipbm")
	s.dp.SetLogger(logger.With("component", "dataplane", "switch", "ipbm"))
	if !opts.FlowDisable {
		lanes := opts.NumPorts
		if lanes < MaxShards+1 {
			lanes = MaxShards + 1
		}
		s.flows = flowstat.NewSet(lanes, flowstat.Config{
			TableBits:   opts.FlowTableBits,
			IdleNanos:   int64(opts.FlowIdle),
			TopK:        opts.FlowTopK,
			SketchWidth: opts.FlowSketchWidth,
			SketchDepth: opts.FlowSketchDepth,
			RingSize:    opts.FlowRecordRing,
		})
	}
	s.newTelemetry(opts)
	s.dp.SetHooks(telemetryHooks{s})
	s.initHealth(opts)
	return s, nil
}

// Pipeline exposes the pipeline module (PM).
func (s *Switch) Pipeline() *pipeline.Pipeline { return s.pl }

// Storage exposes the storage module (SM).
func (s *Switch) Storage() *mem.Manager { return s.mm }

// Ports exposes the communication module (CM).
func (s *Switch) Ports() *netio.PortSet { return s.ports }

// Registers exposes the register file.
func (s *Switch) Registers() *tsp.RegisterFile { return s.regs }

// Config returns the installed configuration (nil before the first
// ApplyConfig).
func (s *Switch) Config() *template.Config {
	if d := s.dp.Design(); d != nil {
		return d.Cfg
	}
	return nil
}

// selectorTable backs an ECMP-style selector: groups of members resolved
// by hash. Like the exact-match engine, the per-packet lookup is
// lock-free over an immutable copy-on-write snapshot; member adds (a
// control-plane operation) clone and republish.
type selectorTable struct {
	mu     sync.Mutex // serialises writers; readers never take it
	groups atomic.Pointer[map[string][]match.Result]
}

func newSelectorTable() *selectorTable {
	st := &selectorTable{}
	m := make(map[string][]match.Result)
	st.groups.Store(&m)
	return st
}

func (st *selectorTable) addMember(group []byte, r match.Result) {
	st.mu.Lock()
	defer st.mu.Unlock()
	old := *st.groups.Load()
	m := make(map[string][]match.Result, len(old)+1)
	for k, v := range old {
		m[k] = v
	}
	k := string(group)
	m[k] = append(append([]match.Result(nil), old[k]...), r)
	st.groups.Store(&m)
}

func (st *selectorTable) lookup(group []byte, h uint64) (match.Result, bool) {
	members := (*st.groups.Load())[string(group)]
	if len(members) == 0 {
		return match.Result{}, false
	}
	return members[h%uint64(len(members))], true
}

// LookupMember implements tsp.ResolvedSelector for bound handles.
func (st *selectorTable) LookupMember(group []byte, h uint64) (match.Result, bool) {
	return st.lookup(group, h)
}

func (st *selectorTable) memberCount() int {
	n := 0
	for _, m := range *st.groups.Load() {
		n += len(m)
	}
	return n
}

// tspSignature canonically describes a TSP's required content under cfg.
func tspSignature(cfg *template.Config, tspIdx int) string {
	var stages []string
	for sn, idx := range cfg.TSPAssignment {
		if idx == tspIdx {
			stages = append(stages, sn)
		}
	}
	// Execution order within a TSP follows the chain order.
	rank := make(map[string]int)
	for i, n := range cfg.IngressChain {
		rank[n] = i
	}
	for i, n := range cfg.EgressChain {
		rank[n] = len(cfg.IngressChain) + i
	}
	sort.Slice(stages, func(i, j int) bool { return rank[stages[i]] < rank[stages[j]] })
	var parts []string
	for _, sn := range stages {
		st := cfg.Stages[sn]
		sub := template.Config{
			Stages:  map[string]*template.Stage{sn: st},
			Actions: map[string]*template.Action{},
			Tables:  map[string]*template.Table{},
		}
		for _, arm := range st.Arms {
			sub.Actions[arm.Action] = cfg.Actions[arm.Action]
		}
		for _, tn := range st.Tables {
			sub.Tables[tn] = cfg.Tables[tn]
		}
		b, _ := json.Marshal(&sub)
		parts = append(parts, string(b))
	}
	return strings.Join(parts, "\x00")
}

// orderedStagesOf returns the stage names hosted by tspIdx in chain order.
func orderedStagesOf(cfg *template.Config, tspIdx int) []string {
	var stages []string
	for sn, idx := range cfg.TSPAssignment {
		if idx == tspIdx {
			stages = append(stages, sn)
		}
	}
	rank := make(map[string]int)
	for i, n := range cfg.IngressChain {
		rank[n] = i
	}
	for i, n := range cfg.EgressChain {
		rank[n] = len(cfg.IngressChain) + i
	}
	sort.Slice(stages, func(i, j int) bool { return rank[stages[i]] < rank[stages[j]] })
	return stages
}

// ApplyConfig installs or patches a device configuration. On a patch, only
// TSPs whose template content changed are rewritten, new tables are
// created, vanished tables are recycled, existing table entries and
// register contents are preserved, and tables whose TSP moved across
// crossbar clusters are migrated. By default the change is published as a
// new epoch of the versioned program store (hitless — see epoch.go); with
// Options.DrainReconfig the legacy drain-and-swap below runs instead.
func (s *Switch) ApplyConfig(cfg *template.Config) (*ctrlplane.ApplyStats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyLocked(cfg, start)
}

// applyLocked dispatches an already-validated configuration to the
// hitless or drain-and-swap implementation. Callers hold s.mu (the edit
// layer's commit reuses this entry point under its own lock hold).
func (s *Switch) applyLocked(cfg *template.Config, start time.Time) (*ctrlplane.ApplyStats, error) {
	if !s.opts.DrainReconfig {
		return s.applyHitless(cfg, start)
	}
	var old *template.Config
	if d := s.dp.Design(); d != nil {
		old = d.Cfg
	}
	if old != nil && cfg.Patch != nil && s.opts.Crossbar == mem.FullCrossbar {
		// rp4bc told us exactly what changed: write only that. (Clustered
		// crossbars take the diffing path because a layout change may
		// force cross-cluster table migrations the manifest doesn't
		// describe.)
		return s.applyPatch(cfg, start)
	}
	stats := &ctrlplane.ApplyStats{Full: old == nil}

	// 1. Registers: additive, contents preserved.
	if err := s.regs.Update(cfg.Registers); err != nil {
		return nil, err
	}

	// 2. Tables: create new, drop removed, migrate moved.
	tspOfTable := func(c *template.Config, name string) int {
		for sn, st := range c.Stages {
			for _, tn := range st.Tables {
				if tn == name {
					return c.TSPAssignment[sn]
				}
			}
		}
		return 0
	}
	for name, t := range cfg.Tables {
		if _, ok := s.mm.Table(name); ok {
			if old != nil {
				oldTSP, newTSP := tspOfTable(old, name), tspOfTable(cfg, name)
				if oldTSP != newTSP {
					moved, err := s.mm.Migrate(name, newTSP)
					if err != nil {
						return nil, err
					}
					stats.EntriesMigrated += moved
				}
			}
			continue
		}
		kind, err := match.ParseKind(t.Kind)
		if err != nil {
			return nil, err
		}
		if _, err := s.mm.CreateTable(name, kind, t.KeyWidth, t.Size, tspOfTable(cfg, name)); err != nil {
			return nil, err
		}
		stats.TablesCreated++
		if t.IsSelector {
			s.selectors[name] = newSelectorTable()
		}
	}
	if old != nil {
		for name := range old.Tables {
			if _, stays := cfg.Tables[name]; !stays {
				if err := s.mm.DropTable(name); err != nil {
					return nil, err
				}
				delete(s.selectors, name)
				stats.TablesDropped++
			}
		}
	}

	// 3. Build stage runtimes for the new config, lowering each stage
	// template to its flat program (unless the interpreter was selected),
	// with the INT stamping epilogue when INT is enabled on this switch.
	runtimes, err := tsp.BuildStageRuntimesOpts(cfg, tsp.BuildOpts{Mode: s.opts.Exec, Int: s.intOn})
	if err != nil {
		return nil, err
	}
	for _, sr := range runtimes {
		sr.Bind(s)
	}

	// 4. Drain the pipeline and patch TSP templates + selector. The audit
	// event measures this critical section: TM occupancy going in, the
	// exclusive-hold duration, and what the verdict counters did across it.
	// BeginOp arms the health monitor's reconfiguration deadline: if the
	// drain wedges (a reader stuck inside the pipeline), the switch is
	// reported degraded instead of hanging silently.
	kind := "apply_diff"
	if stats.Full {
		kind = "apply_full"
	}
	hash := configHash(cfg)
	inFlight := s.tmDepthSum()
	verdictsBefore := s.tel.verdictSnapshot()
	opDone := s.health.BeginOp(kind, hash)
	drainStart := time.Now()
	err = s.pl.Update(func(sel *pipeline.Selector, tsps []*tsp.TSP) error {
		tmIn, tmOut := -1, len(tsps)
		for i := range tsps {
			newSig := tspSignature(cfg, i)
			oldSig := ""
			if old != nil {
				oldSig = tspSignature(old, i)
			}
			if newSig != oldSig {
				var srs []*tsp.StageRuntime
				for _, sn := range orderedStagesOf(cfg, i) {
					srs = append(srs, runtimes[sn])
				}
				if len(srs) == 0 {
					tsps[i].Unload()
				} else {
					tsps[i].Load(srs)
				}
				stats.TSPsWritten++
			} else if old != nil {
				// Unchanged content must still point at the new runtime
				// objects (the old ones referenced the previous config).
				var srs []*tsp.StageRuntime
				for _, sn := range orderedStagesOf(cfg, i) {
					srs = append(srs, runtimes[sn])
				}
				if len(srs) > 0 {
					// Refresh without counting as a template write: the
					// bits are identical, only our interpreter state moves.
					tsps[i].Load(srs)
				}
			}
			for _, sn := range orderedStagesOf(cfg, i) {
				switch cfg.Stages[sn].Pipe {
				case "ingress":
					if i > tmIn {
						tmIn = i
					}
				case "egress":
					if i < tmOut {
						tmOut = i
					}
				}
			}
		}
		if sel.TMIn != tmIn || sel.TMOut != tmOut {
			stats.SelectorMoved = true
		}
		sel.TMIn, sel.TMOut = tmIn, tmOut
		return nil
	})
	drain := time.Since(drainStart)
	opDone()
	if err != nil {
		return nil, err
	}

	// 5. Publish the new design snapshot (parser, SRv6 IDs, config) and
	// the refreshed table-handle view; re-derive the INT sink's stage map
	// for the new stage set.
	s.rebuildLookups()
	s.dp.Install(cfg, s.regs)
	if s.intOn {
		s.publishIntState(cfg)
	}
	stats.LoadNanos = int64(time.Since(start))
	if stats.Full {
		s.tel.appliesFull.Inc()
	} else {
		s.tel.appliesDiff.Inc()
	}
	s.tel.tspsWritten.Add(uint64(stats.TSPsWritten))
	s.tel.migrated.Add(uint64(stats.EntriesMigrated))
	s.tel.Events.Append(telemetry.Event{
		Kind:          kind,
		ConfigHash:    hash,
		TSPsWritten:   stats.TSPsWritten,
		TablesCreated: stats.TablesCreated,
		TablesDropped: stats.TablesDropped,
		DrainNanos:    int64(drain),
		InFlight:      inFlight,
		VerdictDeltas: s.tel.verdictDeltas(verdictsBefore),
	})
	s.log.Debug("configuration applied",
		"kind", kind, "config_hash", hash,
		"tsps_written", stats.TSPsWritten,
		"tables_created", stats.TablesCreated,
		"tables_dropped", stats.TablesDropped,
		"entries_migrated", stats.EntriesMigrated,
		"drain", drain, "in_flight", inFlight)
	return stats, nil
}

// lookupSnapshot is an immutable name→handle view of the table store.
type lookupSnapshot struct {
	tables    map[string]*mem.Table
	selectors map[string]*selectorTable
}

// rebuildLookups publishes a fresh snapshot of resolved table and
// selector handles. Called with s.mu held after any change to the table
// set (create, drop, migrate); entry inserts and member adds mutate the
// handles' contents and need no republish.
func (s *Switch) rebuildLookups() {
	snap := &lookupSnapshot{
		tables:    make(map[string]*mem.Table),
		selectors: make(map[string]*selectorTable, len(s.selectors)),
	}
	for _, name := range s.mm.Tables() {
		if t, ok := s.mm.Table(name); ok {
			snap.tables[name] = t
		}
	}
	for name, st := range s.selectors {
		snap.selectors[name] = st
	}
	s.lookups.Store(snap)
}

// ResolveTable implements tsp.TableResolver: compiled stage programs
// bind direct *mem.Table handles at apply time and skip the per-packet
// name resolution. The handle survives inserts and migrations (the
// manager mutates the table in place).
func (s *Switch) ResolveTable(name string) (tsp.ResolvedTable, bool) {
	t, ok := s.mm.Table(name)
	if !ok {
		return nil, false
	}
	return t, true
}

// ResolveSelector implements tsp.SelectorResolver; the same lifetime
// contract as ResolveTable applies (member adds mutate the handle's
// contents in place; only a table drop, which rebinds, invalidates it).
func (s *Switch) ResolveSelector(name string) (tsp.ResolvedSelector, bool) {
	st, ok := s.selectors[name]
	if !ok {
		return nil, false
	}
	return st, true
}

// Lookup implements tsp.TableBackend over the storage module.
func (s *Switch) Lookup(table string, key []byte) (match.Result, bool) {
	snap := s.lookups.Load()
	if snap == nil {
		return match.Result{}, false
	}
	t := snap.tables[table]
	if t == nil {
		return match.Result{}, false
	}
	return t.Lookup(key)
}

// LookupSelector implements the ECMP group/member resolution.
func (s *Switch) LookupSelector(table string, groupKey []byte, h uint64) (match.Result, bool) {
	snap := s.lookups.Load()
	if snap == nil {
		return match.Result{}, false
	}
	st := snap.selectors[table]
	if st == nil {
		return match.Result{}, false
	}
	return st.lookup(groupKey, h)
}
