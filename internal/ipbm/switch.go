// Package ipbm is the IPSA behavioral model: a software switch conforming
// to the IPSA architecture (paper Sec. 4.1). It assembles four modules:
// the Communication Module (netio ports), the Pipeline Module (elastic
// pipeline of TSPs), the Control Channel Module (ctrlplane server) and the
// Storage Module (disaggregated memory pool). Its defining property is
// that ApplyConfig patches only what changed: TSP templates are rewritten
// individually, existing tables and registers keep their contents, and the
// pipeline stalls only for the duration of the patch.
package ipbm

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ipsa/internal/ctrlplane"
	"ipsa/internal/match"
	"ipsa/internal/mem"
	"ipsa/internal/netio"
	"ipsa/internal/pipeline"
	"ipsa/internal/pkt"
	"ipsa/internal/template"
	"ipsa/internal/tsp"
)

// Options sizes a switch.
type Options struct {
	NumTSPs    int
	NumPorts   int
	QueueDepth int
	Mem        mem.Config
	Crossbar   mem.CrossbarKind
	// PuntDepth bounds the to-CPU queue.
	PuntDepth int
	// TraceRing sizes the telemetry flight recorder (records retained).
	TraceRing int
	// TraceEvery samples every Nth packet into the flight recorder
	// (0 disables tracing until enabled via the control channel).
	TraceEvery uint64
	// LatencyEvery samples every Nth packet for the per-TSP latency
	// histograms (0 disables latency timing, the default — embedding
	// library users opt in). A sampled packet pays two clock reads plus
	// a histogram update per active TSP; at the ipbm daemon's 1-in-128
	// default that amortizes to well under a percent of a ~2µs forward.
	LatencyEvery uint64
}

// DefaultOptions returns a software-scale switch: more TSPs than the
// paper's 8-processor FPGA so that every use case fits even when header
// linkage defeats predicate merging.
func DefaultOptions() Options {
	return Options{
		NumTSPs:    16,
		NumPorts:   8,
		QueueDepth: 1024,
		Mem:        mem.DefaultConfig(),
		Crossbar:   mem.FullCrossbar,
		PuntDepth:  256,

		TraceRing:    256,
		TraceEvery:   0,
		LatencyEvery: 0,
	}
}

// Switch is one ipbm instance.
type Switch struct {
	opts Options

	pl    *pipeline.Pipeline
	mm    *mem.Manager
	ports *netio.PortSet
	regs  *tsp.RegisterFile

	mu        sync.RWMutex
	cfg       *template.Config
	parser    *tsp.OnDemandParser
	selectors map[string]*selectorTable
	srhID     pkt.HeaderID
	ipv6ID    pkt.HeaderID

	faults tsp.Faults
	toCPU  chan *pkt.Packet
	punted atomic.Uint64

	tel *Telemetry

	runWG   sync.WaitGroup
	stopped atomic.Bool
}

// New builds an unconfigured switch.
func New(opts Options) (*Switch, error) {
	if opts.NumTSPs <= 0 || opts.NumPorts <= 0 {
		return nil, fmt.Errorf("ipbm: invalid sizing %+v", opts)
	}
	pl, err := pipeline.New(opts.NumTSPs, opts.NumPorts, opts.QueueDepth)
	if err != nil {
		return nil, err
	}
	mm, err := mem.NewManager(opts.Mem, opts.Crossbar, opts.NumTSPs)
	if err != nil {
		return nil, err
	}
	ports, err := netio.NewPortSet(opts.NumPorts, opts.QueueDepth)
	if err != nil {
		return nil, err
	}
	puntDepth := opts.PuntDepth
	if puntDepth <= 0 {
		puntDepth = 256
	}
	s := &Switch{
		opts:      opts,
		pl:        pl,
		mm:        mm,
		ports:     ports,
		regs:      tsp.NewRegisterFile(nil),
		selectors: make(map[string]*selectorTable),
		toCPU:     make(chan *pkt.Packet, puntDepth),
	}
	s.newTelemetry(opts)
	return s, nil
}

// Pipeline exposes the pipeline module (PM).
func (s *Switch) Pipeline() *pipeline.Pipeline { return s.pl }

// Storage exposes the storage module (SM).
func (s *Switch) Storage() *mem.Manager { return s.mm }

// Ports exposes the communication module (CM).
func (s *Switch) Ports() *netio.PortSet { return s.ports }

// Registers exposes the register file.
func (s *Switch) Registers() *tsp.RegisterFile { return s.regs }

// Config returns the installed configuration (nil before the first
// ApplyConfig).
func (s *Switch) Config() *template.Config {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cfg
}

// selectorTable backs an ECMP-style selector: groups of members resolved
// by hash.
type selectorTable struct {
	mu     sync.RWMutex
	groups map[string][]match.Result
}

func (st *selectorTable) addMember(group []byte, r match.Result) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.groups[string(group)] = append(st.groups[string(group)], r)
}

func (st *selectorTable) lookup(group []byte, h uint64) (match.Result, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	members := st.groups[string(group)]
	if len(members) == 0 {
		return match.Result{}, false
	}
	return members[h%uint64(len(members))], true
}

func (st *selectorTable) memberCount() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	n := 0
	for _, m := range st.groups {
		n += len(m)
	}
	return n
}

// tspSignature canonically describes a TSP's required content under cfg.
func tspSignature(cfg *template.Config, tspIdx int) string {
	var stages []string
	for sn, idx := range cfg.TSPAssignment {
		if idx == tspIdx {
			stages = append(stages, sn)
		}
	}
	// Execution order within a TSP follows the chain order.
	rank := make(map[string]int)
	for i, n := range cfg.IngressChain {
		rank[n] = i
	}
	for i, n := range cfg.EgressChain {
		rank[n] = len(cfg.IngressChain) + i
	}
	sort.Slice(stages, func(i, j int) bool { return rank[stages[i]] < rank[stages[j]] })
	var parts []string
	for _, sn := range stages {
		st := cfg.Stages[sn]
		sub := template.Config{
			Stages:  map[string]*template.Stage{sn: st},
			Actions: map[string]*template.Action{},
			Tables:  map[string]*template.Table{},
		}
		for _, arm := range st.Arms {
			sub.Actions[arm.Action] = cfg.Actions[arm.Action]
		}
		for _, tn := range st.Tables {
			sub.Tables[tn] = cfg.Tables[tn]
		}
		b, _ := sub.Marshal()
		parts = append(parts, string(b))
	}
	return strings.Join(parts, "\x00")
}

// orderedStagesOf returns the stage names hosted by tspIdx in chain order.
func orderedStagesOf(cfg *template.Config, tspIdx int) []string {
	var stages []string
	for sn, idx := range cfg.TSPAssignment {
		if idx == tspIdx {
			stages = append(stages, sn)
		}
	}
	rank := make(map[string]int)
	for i, n := range cfg.IngressChain {
		rank[n] = i
	}
	for i, n := range cfg.EgressChain {
		rank[n] = len(cfg.IngressChain) + i
	}
	sort.Slice(stages, func(i, j int) bool { return rank[stages[i]] < rank[stages[j]] })
	return stages
}

// ApplyConfig installs or patches a device configuration. On a patch, only
// TSPs whose template content changed are rewritten, new tables are
// created, vanished tables are recycled, existing table entries and
// register contents are preserved, and tables whose TSP moved across
// crossbar clusters are migrated.
func (s *Switch) ApplyConfig(cfg *template.Config) (*ctrlplane.ApplyStats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.cfg
	if old != nil && cfg.Patch != nil && s.opts.Crossbar == mem.FullCrossbar {
		// rp4bc told us exactly what changed: write only that. (Clustered
		// crossbars take the diffing path because a layout change may
		// force cross-cluster table migrations the manifest doesn't
		// describe.)
		return s.applyPatch(cfg, start)
	}
	stats := &ctrlplane.ApplyStats{Full: old == nil}

	// 1. Registers: additive, contents preserved.
	if err := s.regs.Update(cfg.Registers); err != nil {
		return nil, err
	}

	// 2. Tables: create new, drop removed, migrate moved.
	tspOfTable := func(c *template.Config, name string) int {
		for sn, st := range c.Stages {
			for _, tn := range st.Tables {
				if tn == name {
					return c.TSPAssignment[sn]
				}
			}
		}
		return 0
	}
	for name, t := range cfg.Tables {
		if _, ok := s.mm.Table(name); ok {
			if old != nil {
				oldTSP, newTSP := tspOfTable(old, name), tspOfTable(cfg, name)
				if oldTSP != newTSP {
					moved, err := s.mm.Migrate(name, newTSP)
					if err != nil {
						return nil, err
					}
					stats.EntriesMigrated += moved
				}
			}
			continue
		}
		kind, err := match.ParseKind(t.Kind)
		if err != nil {
			return nil, err
		}
		if _, err := s.mm.CreateTable(name, kind, t.KeyWidth, t.Size, tspOfTable(cfg, name)); err != nil {
			return nil, err
		}
		stats.TablesCreated++
		if t.IsSelector {
			s.selectors[name] = &selectorTable{groups: make(map[string][]match.Result)}
		}
	}
	if old != nil {
		for name := range old.Tables {
			if _, stays := cfg.Tables[name]; !stays {
				if err := s.mm.DropTable(name); err != nil {
					return nil, err
				}
				delete(s.selectors, name)
				stats.TablesDropped++
			}
		}
	}

	// 3. Build stage runtimes for the new config.
	runtimes, err := tsp.BuildStageRuntimes(cfg)
	if err != nil {
		return nil, err
	}

	// 4. Drain the pipeline and patch TSP templates + selector.
	err = s.pl.Update(func(sel *pipeline.Selector, tsps []*tsp.TSP) error {
		tmIn, tmOut := -1, len(tsps)
		for i := range tsps {
			newSig := tspSignature(cfg, i)
			oldSig := ""
			if old != nil {
				oldSig = tspSignature(old, i)
			}
			if newSig != oldSig {
				var srs []*tsp.StageRuntime
				for _, sn := range orderedStagesOf(cfg, i) {
					srs = append(srs, runtimes[sn])
				}
				if len(srs) == 0 {
					tsps[i].Unload()
				} else {
					tsps[i].Load(srs)
				}
				stats.TSPsWritten++
			} else if old != nil {
				// Unchanged content must still point at the new runtime
				// objects (the old ones referenced the previous config).
				var srs []*tsp.StageRuntime
				for _, sn := range orderedStagesOf(cfg, i) {
					srs = append(srs, runtimes[sn])
				}
				if len(srs) > 0 {
					// Refresh without counting as a template write: the
					// bits are identical, only our interpreter state moves.
					tsps[i].Load(srs)
				}
			}
			for _, sn := range orderedStagesOf(cfg, i) {
				switch cfg.Stages[sn].Pipe {
				case "ingress":
					if i > tmIn {
						tmIn = i
					}
				case "egress":
					if i < tmOut {
						tmOut = i
					}
				}
			}
		}
		if sel.TMIn != tmIn || sel.TMOut != tmOut {
			stats.SelectorMoved = true
		}
		sel.TMIn, sel.TMOut = tmIn, tmOut
		return nil
	})
	if err != nil {
		return nil, err
	}

	// 5. Swap in the new parser and config.
	s.parser = tsp.NewOnDemandParser(cfg)
	s.srhID, s.ipv6ID = tsp.ResolveSRv6IDs(cfg)
	s.cfg = cfg
	stats.LoadNanos = int64(time.Since(start))
	if stats.Full {
		s.tel.appliesFull.Inc()
	} else {
		s.tel.appliesDiff.Inc()
	}
	s.tel.tspsWritten.Add(uint64(stats.TSPsWritten))
	s.tel.migrated.Add(uint64(stats.EntriesMigrated))
	return stats, nil
}

// Lookup implements tsp.TableBackend over the storage module.
func (s *Switch) Lookup(table string, key []byte) (match.Result, bool) {
	t, ok := s.mm.Table(table)
	if !ok {
		return match.Result{}, false
	}
	return t.Lookup(key)
}

// LookupSelector implements the ECMP group/member resolution.
func (s *Switch) LookupSelector(table string, groupKey []byte, h uint64) (match.Result, bool) {
	s.mu.RLock()
	st := s.selectors[table]
	s.mu.RUnlock()
	if st == nil {
		return match.Result{}, false
	}
	return st.lookup(groupKey, h)
}
