package ipbm

import (
	"testing"
	"time"

	"ipsa/internal/ctrlplane"
	"ipsa/internal/netio"
	"ipsa/internal/pkt"
)

// TestTwoSwitchTopology wires two ipbm instances back to back and routes a
// packet through both: host -> A(port1) -> A(port3) ~wire~ B(port1) ->
// B(port3). Exercises the CM path (port run loops), the full pipeline of
// both devices and TTL decrement at each hop.
func TestTwoSwitchTopology(t *testing.T) {
	macA := pkt.MAC{0x02, 0, 0, 0, 0xAA, 0x01} // router MAC of A
	macB := pkt.MAC{0x02, 0, 0, 0, 0xBB, 0x01} // router MAC of B (A's nexthop)
	macHost2 := pkt.MAC{0x02, 0, 0, 0, 0xBB, 0xFF}

	build := func(router, nexthopMAC pkt.MAC) *Switch {
		sw, w := newBaseSwitch(t)
		_ = w
		// Reconfigure routing identity per switch: overwrite the default
		// population with this router's own MAC and nexthop.
		insert(t, sw, ctrlplane.EntryReq{
			Table: "l2_l3_tbl",
			Keys:  []ctrlplane.FieldValue{{Value: bridgeIn}, {Value: router.Uint64()}},
			Tag:   1,
		})
		insert(t, sw, ctrlplane.EntryReq{
			Table: "nexthop_tbl", Keys: []ctrlplane.FieldValue{{Value: 42}},
			Tag: 1, Params: []uint64{bridgeOut, nexthopMAC.Uint64()},
		})
		insert(t, sw, ctrlplane.EntryReq{
			Table:     "ipv4_lpm",
			Keys:      []ctrlplane.FieldValue{{Value: 0x14000000}}, // 20.0.0.0/8
			PrefixLen: 8, Tag: 1, Params: []uint64{42},
		})
		insert(t, sw, ctrlplane.EntryReq{
			Table: "dmac_tbl",
			Keys:  []ctrlplane.FieldValue{{Value: bridgeOut}, {Value: nexthopMAC.Uint64()}},
			Tag:   1, Params: []uint64{outPort},
		})
		return sw
	}
	swA := build(macA, macB)
	swB := build(macB, macHost2)

	// Wire A's port 3 to B's port 1.
	pa, err := swA.Ports().Port(outPort)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := swB.Ports().Port(inPort)
	if err != nil {
		t.Fatal(err)
	}
	netio.Wire(pa, pb)
	swA.Run()
	swB.Run()
	defer swA.Shutdown()
	defer swB.Shutdown()

	// Inject at A's port 1 a packet for 20.1.2.3 addressed to A's MAC.
	raw, err := pkt.Serialize(
		&pkt.Ethernet{Dst: macA, Src: hostMAC, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoTCP, Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{20, 1, 2, 3}},
		&pkt.TCP{SrcPort: 5, DstPort: 6},
	)
	if err != nil {
		t.Fatal(err)
	}
	ingress, err := swA.Ports().Port(inPort)
	if err != nil {
		t.Fatal(err)
	}
	if !ingress.Inject(raw) {
		t.Fatal("inject failed")
	}

	// The frame must emerge at B's port 3 with TTL 62 and dmac = host2.
	egress, err := swB.Ports().Port(outPort)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	var out []byte
	for out == nil {
		select {
		case <-deadline:
			t.Fatal("packet never crossed the two-switch topology")
		default:
		}
		if d, ok := egress.Drain(); ok {
			out = d
		} else {
			time.Sleep(time.Millisecond)
		}
	}
	var eth pkt.Ethernet
	var ip pkt.IPv4
	if err := eth.Decode(out); err != nil {
		t.Fatal(err)
	}
	if err := ip.Decode(out[pkt.EthernetLen:]); err != nil {
		t.Fatal(err)
	}
	if eth.Dst != macHost2 {
		t.Errorf("final dmac = %v, want %v", eth.Dst, macHost2)
	}
	if ip.TTL != 62 {
		t.Errorf("ttl = %d, want 62 (two hops)", ip.TTL)
	}
	if ip.Dst != [4]byte{20, 1, 2, 3} {
		t.Errorf("dst = %v", ip.Dst)
	}
}

// TestUDPPortCarriesFrames pushes a frame between two switch-port
// endpoints over real UDP sockets.
func TestUDPPortCarriesFrames(t *testing.T) {
	a, b, err := netio.PairUDP()
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	frame := v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64)
	if !a.Send(frame) {
		t.Fatal("send failed")
	}
	got, ok := b.Recv()
	if !ok {
		t.Fatal("recv failed")
	}
	if len(got) != len(frame) {
		t.Fatalf("len %d != %d", len(got), len(frame))
	}
	// And the frame is still a valid packet for a switch.
	sw, _ := newBaseSwitch(t)
	p, err := sw.ProcessPacket(got, inPort)
	if err != nil || p.Drop {
		t.Fatalf("frame unusable after UDP transit: err=%v drop=%v", err, p.Drop)
	}
	sent, _, _ := a.Stats()
	_, recvd, _ := b.Stats()
	if sent != 1 || recvd != 1 {
		t.Errorf("stats: %d/%d", sent, recvd)
	}
	b.Close()
	if b.Send(frame) {
		t.Error("send on closed port succeeded")
	}
}
