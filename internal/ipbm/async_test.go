package ipbm

import (
	"testing"
	"time"

	"ipsa/internal/pkt"
)

// TestPipelinedModeForwards runs the asynchronous mode end to end:
// packets injected at the ingress port emerge, rewritten, at the egress
// port via the TM and the egress workers.
func TestPipelinedModeForwards(t *testing.T) {
	sw, _ := newBaseSwitch(t)
	if err := sw.RunPipelined(2); err != nil {
		t.Fatal(err)
	}
	defer sw.Shutdown()
	in, err := sw.Ports().Port(inPort)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sw.Ports().Port(outPort)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			for !in.Inject(v4Packet(t, [4]byte{10, 1, 0, byte(i)}, routerMAC, 64)) {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	got := 0
	deadline := time.After(5 * time.Second)
	for got < n {
		if d, ok := out.Drain(); ok {
			var ip pkt.IPv4
			if err := ip.Decode(d[pkt.EthernetLen:]); err != nil {
				t.Fatal(err)
			}
			if ip.TTL != 63 {
				t.Fatalf("ttl = %d", ip.TTL)
			}
			got++
			continue
		}
		select {
		case <-deadline:
			enq, drops := sw.Pipeline().TM().Stats()
			t.Fatalf("only %d/%d packets emerged (tm enq=%d drops=%d)", got, n, enq, drops)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if f := sw.Faults(); f.BadTemplate.Load() != 0 {
		t.Errorf("faults: %d", f.BadTemplate.Load())
	}
}

// TestPipelinedModeErrors: misconfiguration is rejected up front.
func TestPipelinedModeErrors(t *testing.T) {
	sw, _ := New(DefaultOptions())
	if err := sw.RunPipelined(1); err == nil {
		t.Error("unconfigured pipelined run accepted")
	}
	cfgd, _ := newBaseSwitch(t)
	if err := cfgd.RunPipelined(0); err == nil {
		t.Error("zero workers accepted")
	}
}

// TestTMTailDropUnderBurst: with no egress workers draining, a burst
// beyond the queue depth is tail-dropped by policy, and the buffered
// packets still come out once draining starts.
func TestTMTailDropUnderBurst(t *testing.T) {
	opts := DefaultOptions()
	opts.QueueDepth = 4
	sw, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	w := newBaseWorkspace(t)
	if _, err := sw.ApplyConfig(w.Current().Config); err != nil {
		t.Fatal(err)
	}
	populateBase(t, sw)
	// Burst 10 packets through ingress only.
	for i := 0; i < 10; i++ {
		sw.ingestOne(v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64), inPort)
	}
	enq, drops := sw.Pipeline().TM().Stats()
	if enq != 4 || drops != 6 {
		t.Fatalf("tm stats: enq=%d drops=%d, want 4/6", enq, drops)
	}
	// Drain: exactly the buffered 4 emerge.
	out, _ := sw.Ports().Port(outPort)
	for sw.egestOne() {
	}
	gotten := 0
	for {
		if _, ok := out.Drain(); !ok {
			break
		}
		gotten++
	}
	if gotten != 4 {
		t.Fatalf("drained %d packets, want 4", gotten)
	}
}

// TestDequeueRRFairness: two queues drain alternately.
func TestDequeueRRFairness(t *testing.T) {
	sw, _ := newBaseSwitch(t)
	tm := sw.Pipeline().TM()
	mk := func(port int) *pkt.Packet {
		p := pkt.NewPacket(nil, 0)
		p.OutPort = port
		return p
	}
	for i := 0; i < 3; i++ {
		if !tm.Admit(mk(1)) || !tm.Admit(mk(2)) {
			t.Fatal("admit failed")
		}
	}
	var order []int
	for {
		p, ok := tm.DequeueRR()
		if !ok {
			break
		}
		order = append(order, p.OutPort)
	}
	if len(order) != 6 {
		t.Fatalf("drained %d", len(order))
	}
	// Alternation: no port appears twice in a row while both are backlogged.
	for i := 1; i < 4; i++ {
		if order[i] == order[i-1] {
			t.Fatalf("unfair order: %v", order)
		}
	}
}
