package ipbm

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"ipsa/internal/ctrlplane"
	"ipsa/internal/telemetry"
)

// TestTelemetryEndToEnd drives the full observability path: traffic, an
// in-situ patch, then a Prometheus scrape over HTTP and metrics/trace
// dumps over the control channel. Every packet is traced and
// latency-sampled so the small run observes deterministic telemetry.
func TestTelemetryEndToEnd(t *testing.T) {
	w := newBaseWorkspace(t)
	opts := DefaultOptions()
	opts.TraceEvery = 1
	opts.LatencyEvery = 1
	sw, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.ApplyConfig(w.Current().Config); err != nil {
		t.Fatal(err)
	}
	populateBase(t, sw)

	// Baseline traffic through the egress port so tx counters move.
	for i := 0; i < 8; i++ {
		sent, err := sw.Forward(v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64), inPort)
		if err != nil || !sent {
			t.Fatalf("baseline forward %d: err=%v sent=%v", i, err, sent)
		}
	}

	// In-situ patch: insert ECMP at runtime, then keep forwarding.
	rep, err := w.ApplyScript(script(t, "ecmp.script"), loader(t))
	if err != nil {
		t.Fatal(err)
	}
	st, err := sw.ApplyConfig(rep.Config)
	if err != nil {
		t.Fatal(err)
	}
	if st.Full {
		t.Fatal("patch treated as full install")
	}
	if err := sw.AddMember(ctrlplane.MemberReq{
		Table: "ecmp_ipv4", Group: ctrlplane.FieldValue{Value: nexthopID},
		Tag: 1, Params: []uint64{bridgeOut, nhMAC.Uint64()},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		p, err := sw.ProcessPacket(v4Packet(t, [4]byte{10, 1, 0, byte(i)}, routerMAC, 64), inPort)
		if err != nil || p.Drop {
			t.Fatalf("post-patch forward %d: err=%v drop=%v", i, err, p.Drop)
		}
	}

	// Control-channel export: metrics and traces over the CCM socket.
	srv := ctrlplane.NewServer(sw, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := ctrlplane.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	points, err := cl.MetricsDump()
	if err != nil {
		t.Fatal(err)
	}
	find := func(name string) []telemetry.MetricPoint {
		var out []telemetry.MetricPoint
		for _, p := range points {
			if p.Name == name {
				out = append(out, p)
			}
		}
		return out
	}
	var applies float64
	for _, p := range find("ipsa_config_applies_total") {
		applies += p.Value
	}
	if applies < 2 { // initial full install + the in-situ patch
		t.Errorf("config applies = %v, want >= 2", applies)
	}
	var hits float64
	for _, p := range find("ipsa_table_hits_total") {
		hits += p.Value
	}
	if hits == 0 {
		t.Error("no table hits recorded")
	}
	var latSamples uint64
	for _, p := range find("ipsa_tsp_latency_seconds") {
		latSamples += p.Count
	}
	if latSamples == 0 {
		t.Error("no TSP latency samples recorded")
	}

	traces, err := cl.TraceDump(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) == 0 {
		t.Fatal("no flight records after patch")
	}
	if len(traces) > 4 {
		t.Fatalf("trace dump ignored max: %d records", len(traces))
	}
	newest := traces[0]
	if newest.Verdict != "forwarded" || newest.InPort != inPort {
		t.Errorf("newest trace: %+v", newest)
	}
	if len(newest.Stages) == 0 || len(newest.Headers) == 0 {
		t.Fatalf("trace missing journey: stages=%d headers=%d", len(newest.Stages), len(newest.Headers))
	}
	ecmpSeen := false
	for _, ev := range newest.Stages {
		if ev.Table == "ecmp_ipv4" || strings.Contains(ev.Stage, "ecmp") {
			ecmpSeen = true
		}
	}
	if !ecmpSeen {
		t.Errorf("post-patch trace never touched the patched-in stage: %+v", newest.Stages)
	}

	// Per-port stats ride DeviceStats now.
	dst, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(dst.Ports) != DefaultOptions().NumPorts {
		t.Fatalf("device stats carry %d ports", len(dst.Ports))
	}
	if dst.Ports[outPort].Sent == 0 {
		t.Errorf("egress port sent nothing: %+v", dst.Ports[outPort])
	}

	// HTTP scrape: the Prometheus endpoint serves the same registry.
	tel := sw.Telemetry()
	ms, err := telemetry.Serve("127.0.0.1:0", tel.Reg, tel.Tracer, tel.Events)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	resp, err := http.Get("http://" + ms.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		fmt.Sprintf(`ipsa_port_tx_packets_total{port="%d"}`, outPort),
		`ipsa_table_hits_total{table="ipv4_lpm"}`,
		`ipsa_tsp_latency_seconds_bucket{tsp="0",le="+Inf"}`,
		`ipsa_config_applies_total{mode="full"} 1`,
		`ipsa_stage_packets_total`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	tresp, err := http.Get("http://" + ms.Addr() + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	tbody, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if !strings.Contains(string(tbody), `"verdict":"forwarded"`) {
		t.Errorf("trace endpoint: %.200s", tbody)
	}
}

// TestTelemetryDisabledByDefault: with tracing off, forwarding records no
// flight traces and leaves no per-packet residue.
func TestTelemetryDisabledByDefault(t *testing.T) {
	sw, _ := newBaseSwitch(t)
	for i := 0; i < 32; i++ {
		p, err := sw.ProcessPacket(v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64), inPort)
		if err != nil || p.Drop {
			t.Fatalf("forward: err=%v drop=%v", err, p.Drop)
		}
		if p.Trace != nil {
			t.Fatal("untraced packet kept a flight record")
		}
	}
	if n := sw.Telemetry().Tracer.Len(); n != 0 {
		t.Fatalf("tracer buffered %d records with tracing disabled", n)
	}
}

// TestCounterConservationPipelined soaks the asynchronous mode with a
// burst and checks no packet is unaccounted for: everything the switch
// accepted is either transmitted, dropped by a stage, tail-dropped by the
// TM, dropped at a port, or lost to a missing egress port.
func TestCounterConservationPipelined(t *testing.T) {
	w := newBaseWorkspace(t)
	opts := DefaultOptions()
	opts.QueueDepth = 8
	sw, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.ApplyConfig(w.Current().Config); err != nil {
		t.Fatal(err)
	}
	populateBase(t, sw)
	if err := sw.RunPipelined(1); err != nil {
		t.Fatal(err)
	}
	defer sw.Shutdown()

	in, err := sw.Ports().Port(inPort)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sw.Ports().Port(outPort)
	if err != nil {
		t.Fatal(err)
	}
	// Keep the egress rx ring from backpressuring the TM drain.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				if _, ok := out.Drain(); !ok {
					time.Sleep(100 * time.Microsecond)
				}
			}
		}
	}()
	defer close(done)

	// Burst: routable packets racing a 1-worker egress over a depth-8
	// queue (tail drops likely), plus unroutable ones (stage drops).
	accepted := uint64(0)
	for i := 0; i < 600; i++ {
		dst := [4]byte{10, 1, byte(i >> 4), byte(i)}
		if i%5 == 4 {
			dst = [4]byte{192, 168, 0, byte(i)} // no route installed
		}
		if in.Inject(v4Packet(t, dst, routerMAC, 64)) {
			accepted++
		}
	}

	account := func() (uint64, string) {
		_, plDropped := sw.Pipeline().Stats()
		_, tmDrops := sw.Pipeline().TM().Stats()
		var sent, txDrops uint64
		for i := 0; i < sw.Ports().Len(); i++ {
			p, err := sw.Ports().Port(i)
			if err != nil {
				continue
			}
			st := p.DetailedStats()
			sent += st.Sent
			txDrops += st.TxDrops
		}
		noPort := uint64(0)
		for _, pt := range sw.Telemetry().Reg.Gather() {
			if pt.Name == "ipsa_no_port_drops_total" {
				noPort = uint64(pt.Value)
			}
		}
		total := plDropped + tmDrops + sent + txDrops + noPort
		detail := fmt.Sprintf("stage_drops=%d tm_drops=%d sent=%d tx_drops=%d no_port=%d",
			plDropped, tmDrops, sent, txDrops, noPort)
		return total, detail
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		total, detail := account()
		if total == accepted {
			if total == 0 {
				t.Fatal("nothing accepted")
			}
			_, plDropped := sw.Pipeline().Stats()
			if plDropped == 0 {
				t.Errorf("unroutable packets never hit a stage drop (%s)", detail)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("conservation violated: accepted=%d accounted=%d (%s)", accepted, total, detail)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
