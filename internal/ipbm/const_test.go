package ipbm

import (
	"testing"

	"ipsa/internal/ctrlplane"
	"ipsa/internal/pkt"
)

// TestConstDeclarations: a function using named constants loads and runs.
func TestConstDeclarations(t *testing.T) {
	sw, w := newBaseSwitch(t)
	snippet := `
const bit<8> PROTO_TCP = 6;
const bit<8> MARK_DSCP = 46;

table tcp_mark {
    key = {
        ipv4.dst_addr: exact;
    }
    actions = { mark_tcp; }
    size = 64;
}

action mark_tcp() {
    if (ipv4.protocol == PROTO_TCP) {
        ipv4.diffserv = MARK_DSCP << 2;
    }
}

stage tcp_mark_stage {
    parser { ipv4 };
    matcher {
        if (ipv4.isValid()) tcp_mark.apply();
        else;
    };
    executor {
        1: mark_tcp;
        default: NoAction;
    };
}

user_funcs { func marker { tcp_mark_stage } }
`
	script := `
load marker.rp4 --func_name marker
add_link port_map tcp_mark_stage
add_link tcp_mark_stage bd_vrf
del_link port_map bd_vrf
`
	rep, err := w.ApplyScript(script, func(string) (string, error) { return snippet, nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.ApplyConfig(rep.Config); err != nil {
		t.Fatal(err)
	}
	insert(t, sw, ctrlplane.EntryReq{
		Table: "tcp_mark", Keys: []ctrlplane.FieldValue{{Value: 0x0A000002}}, Tag: 1,
	})
	p, err := sw.ProcessPacket(v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64), inPort)
	if err != nil || p.Drop {
		t.Fatalf("err=%v drop=%v", err, p.Drop)
	}
	var ip pkt.IPv4
	_ = ip.Decode(p.Data[pkt.EthernetLen:])
	if ip.DSCP != 46 {
		t.Errorf("dscp = %d, want 46 (via consts)", ip.DSCP)
	}
	// The rendered updated design keeps the const declarations.
	if got := w.RenderProgram(); !contains(got, "const bit<8> PROTO_TCP = 6;") {
		t.Error("const lost in rendered design")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
