package ipbm

import (
	"fmt"
	"time"

	"ipsa/internal/ctrlplane"
	"ipsa/internal/match"
	"ipsa/internal/pipeline"
	"ipsa/internal/telemetry"
	"ipsa/internal/template"
	"ipsa/internal/tsp"
)

// applyPatch is the in-situ fast path: the configuration carries rp4bc's
// patch manifest, so the device writes exactly the listed TSP templates
// and touches exactly the listed tables — no whole-configuration diffing,
// matching the hardware flow where the compiler downloads specific
// templates. Called with s.mu held.
func (s *Switch) applyPatch(cfg *template.Config, start time.Time) (*ctrlplane.ApplyStats, error) {
	p := cfg.Patch
	stats := &ctrlplane.ApplyStats{}
	for _, idx := range p.RewrittenTSPs {
		if idx < 0 || idx >= s.pl.NumTSPs() {
			return nil, fmt.Errorf("ipbm: patch rewrites TSP %d outside [0,%d)", idx, s.pl.NumTSPs())
		}
	}

	// 1. Registers: additive, contents preserved.
	if err := s.regs.Update(cfg.Registers); err != nil {
		return nil, err
	}

	// 2. Tables named by the manifest.
	tspOfTable := func(name string) int {
		for sn, st := range cfg.Stages {
			for _, tn := range st.Tables {
				if tn == name {
					return cfg.TSPAssignment[sn]
				}
			}
		}
		return 0
	}
	for _, name := range p.NewTables {
		t, ok := cfg.Tables[name]
		if !ok {
			return nil, fmt.Errorf("ipbm: patch creates unknown table %q", name)
		}
		if _, exists := s.mm.Table(name); exists {
			continue
		}
		kind, err := match.ParseKind(t.Kind)
		if err != nil {
			return nil, err
		}
		if _, err := s.mm.CreateTable(name, kind, t.KeyWidth, t.Size, tspOfTable(name)); err != nil {
			return nil, err
		}
		stats.TablesCreated++
		if t.IsSelector {
			s.selectors[name] = newSelectorTable()
		}
	}
	for _, name := range p.RemovedTables {
		if _, exists := s.mm.Table(name); !exists {
			continue
		}
		if err := s.mm.DropTable(name); err != nil {
			return nil, err
		}
		delete(s.selectors, name)
		stats.TablesDropped++
	}

	// 3. Runtimes only for the stages landing on rewritten TSPs.
	rewritten := make(map[int]bool, len(p.RewrittenTSPs))
	for _, idx := range p.RewrittenTSPs {
		rewritten[idx] = true
	}
	newRuntimes := make(map[string]*tsp.StageRuntime)
	for _, sn := range append(append([]string(nil), cfg.IngressChain...), cfg.EgressChain...) {
		if rewritten[cfg.TSPAssignment[sn]] {
			sr, err := tsp.NewStageRuntimeOpts(cfg, sn, tsp.BuildOpts{Mode: s.opts.Exec, Int: s.intOn})
			if err != nil {
				return nil, err
			}
			sr.Bind(s)
			newRuntimes[sn] = sr
		}
	}

	// 4. Drain and patch; the audit event measures this critical section,
	// and BeginOp arms the health monitor's reconfiguration deadline.
	hash := configHash(cfg)
	inFlight := s.tmDepthSum()
	verdictsBefore := s.tel.verdictSnapshot()
	opDone := s.health.BeginOp("apply_patch", hash)
	drainStart := time.Now()
	err := s.pl.Update(func(sel *pipeline.Selector, tsps []*tsp.TSP) error {
		for idx := range rewritten {
			var srs []*tsp.StageRuntime
			for _, sn := range orderedStagesOf(cfg, idx) {
				srs = append(srs, newRuntimes[sn])
			}
			if len(srs) == 0 {
				tsps[idx].Unload()
			} else {
				tsps[idx].Load(srs)
			}
			stats.TSPsWritten++
		}
		tmIn, tmOut := -1, len(tsps)
		for sn, st := range cfg.Stages {
			idx := cfg.TSPAssignment[sn]
			switch st.Pipe {
			case "ingress":
				if idx > tmIn {
					tmIn = idx
				}
			case "egress":
				if idx < tmOut {
					tmOut = idx
				}
			}
		}
		if sel.TMIn != tmIn || sel.TMOut != tmOut {
			stats.SelectorMoved = true
		}
		sel.TMIn, sel.TMOut = tmIn, tmOut
		return nil
	})
	drain := time.Since(drainStart)
	opDone()
	if err != nil {
		return nil, err
	}

	// 5. Publish the new design snapshot (the parser may have changed:
	// header links) and the refreshed table-handle view; untouched TSPs
	// keep their existing runtimes, whose templates are bit-identical by
	// the manifest's contract. With INT on, the sink's stage map is
	// re-derived for the (possibly changed) stage set; untouched TSPs'
	// compiled stage IDs stay valid because IDs are name-derived.
	s.rebuildLookups()
	s.dp.Install(cfg, s.regs)
	if s.intOn {
		s.publishIntState(cfg)
	}
	stats.LoadNanos = int64(time.Since(start))
	s.tel.appliesPatch.Inc()
	s.tel.tspsWritten.Add(uint64(stats.TSPsWritten))
	s.tel.Events.Append(telemetry.Event{
		Kind:          "apply_patch",
		ConfigHash:    hash,
		TSPsWritten:   stats.TSPsWritten,
		TablesCreated: stats.TablesCreated,
		TablesDropped: stats.TablesDropped,
		DrainNanos:    int64(drain),
		InFlight:      inFlight,
		VerdictDeltas: s.tel.verdictDeltas(verdictsBefore),
	})
	s.log.Debug("configuration applied",
		"kind", "apply_patch", "config_hash", hash,
		"tsps_written", stats.TSPsWritten,
		"tables_created", stats.TablesCreated,
		"tables_dropped", stats.TablesDropped,
		"drain", drain, "in_flight", inFlight)
	return stats, nil
}
