package ipbm

import (
	"sort"

	"ipsa/internal/match"
	"ipsa/internal/template"
)

func matchResult(tag int, params []uint64) match.Result {
	return match.Result{ActionID: tag, Params: append([]uint64(nil), params...)}
}

func sortedTableNames(cfg *template.Config) []string {
	out := make([]string, 0, len(cfg.Tables))
	for n := range cfg.Tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
