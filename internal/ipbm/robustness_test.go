package ipbm

import (
	"math/rand"
	"testing"

	"ipsa/internal/pkt"
	"ipsa/internal/template"
)

// TestRandomBytesNeverPanic throws garbage at the fully populated data
// plane: truncated frames, random ether types, mutated valid packets. The
// switch must never panic and never report an error — malformed packets
// simply miss or drop, like hardware.
func TestRandomBytesNeverPanic(t *testing.T) {
	sw, _ := newBaseSwitch(t)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		n := rng.Intn(128)
		data := make([]byte, n)
		rng.Read(data)
		if _, err := sw.ProcessPacket(data, rng.Intn(8)); err != nil {
			t.Fatalf("packet %d (len %d): %v", i, n, err)
		}
	}
	// Mutations of a valid packet, including truncations mid-header.
	valid := v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64)
	for i := 0; i < 3000; i++ {
		data := append([]byte(nil), valid...)
		switch rng.Intn(3) {
		case 0:
			data = data[:rng.Intn(len(data))]
		case 1:
			data[rng.Intn(len(data))] ^= byte(1 << rng.Intn(8))
		case 2:
			data = data[:rng.Intn(len(data))]
			if len(data) > 0 {
				data[rng.Intn(len(data))] ^= 0xFF
			}
		}
		if _, err := sw.ProcessPacket(data, inPort); err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
	}
}

// TestRandomBytesThroughUseCases repeats the garbage test with every use
// case loaded (the SRv6 path has the most parsing surface: varlen header,
// segment indexing, header removal).
func TestRandomBytesThroughUseCases(t *testing.T) {
	for _, uc := range []string{"ecmp.script", "srv6.script", "flowprobe.script", "acl.script"} {
		sw, w := newBaseSwitch(t)
		rep, err := w.ApplyScript(script(t, uc), loader(t))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sw.ApplyConfig(rep.Config); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(11))
		// Random SRv6-shaped packets with corrupted SRH length fields.
		base, _ := pkt.Serialize(
			&pkt.Ethernet{Dst: routerMAC, Src: hostMAC, EtherType: pkt.EtherTypeIPv6},
			&pkt.IPv6{NextHeader: pkt.IPProtoRouting, HopLimit: 64},
			&pkt.SRH{NextHeader: pkt.IPProtoTCP, SegmentsLeft: 1, Segments: [][16]byte{{1}, {2}}},
			&pkt.TCP{},
		)
		for i := 0; i < 2000; i++ {
			data := append([]byte(nil), base...)
			// Corrupt hdr_ext_len / segments_left / random bytes.
			data[pkt.EthernetLen+pkt.IPv6Len+1] = byte(rng.Intn(256))
			data[pkt.EthernetLen+pkt.IPv6Len+3] = byte(rng.Intn(256))
			if rng.Intn(2) == 0 {
				data = data[:rng.Intn(len(data))]
			}
			if _, err := sw.ProcessPacket(data, inPort); err != nil {
				t.Fatalf("%s packet %d: %v", uc, i, err)
			}
		}
	}
}

// TestApplyFailureLeavesDeviceUsable: a rejected configuration must not
// disturb the running design.
func TestApplyFailureLeavesDeviceUsable(t *testing.T) {
	sw, w := newBaseSwitch(t)
	// Build an invalid config: break a chain reference.
	bad, err := w.Current().Config.Clone()
	if err != nil {
		t.Fatal(err)
	}
	bad.IngressChain = append(bad.IngressChain, "ghost")
	if _, err := sw.ApplyConfig(bad); err == nil {
		t.Fatal("invalid config accepted")
	}
	// Traffic still forwards on the old design.
	p, err := sw.ProcessPacket(v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64), inPort)
	if err != nil || p.Drop {
		t.Fatalf("device broken after rejected config: err=%v drop=%v", err, p.Drop)
	}
}

// TestPatchManifestValidation: a patch naming a TSP outside the machine
// or an unknown table is rejected, and the device keeps forwarding on the
// old design.
func TestPatchManifestValidation(t *testing.T) {
	sw, w := newBaseSwitch(t)
	rep, err := w.ApplyScript(script(t, "flowprobe.script"), loader(t))
	if err != nil {
		t.Fatal(err)
	}
	badTSP, err := rep.Config.Clone()
	if err != nil {
		t.Fatal(err)
	}
	badTSP.Patch = &template.PatchSpec{RewrittenTSPs: []int{99}}
	if _, err := sw.ApplyConfig(badTSP); err == nil {
		t.Error("out-of-range TSP index accepted")
	}
	badTable, err := rep.Config.Clone()
	if err != nil {
		t.Fatal(err)
	}
	badTable.Patch = &template.PatchSpec{NewTables: []string{"ghost"}}
	if _, err := sw.ApplyConfig(badTable); err == nil {
		t.Error("unknown new table accepted")
	}
	p, err := sw.ProcessPacket(v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64), inPort)
	if err != nil || p.Drop {
		t.Fatalf("device broken after rejected patch: err=%v drop=%v", err, p.Drop)
	}
}
