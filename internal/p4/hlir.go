// Package p4 implements a self-contained P4-16 subset front end producing
// an HLIR (high-level intermediate representation). The paper's rp4fc
// consumes p4c's target-independent HLIR; this reproduction substitutes a
// subset front end that covers the shipped designs (v1model-style headers,
// parser state machine, match-action controls) so the P4 → rP4
// transformation path is exercised end to end.
package p4

import (
	"ipsa/internal/rp4/ast"
	"ipsa/internal/rp4/token"
)

// HLIR is the target-independent representation rp4fc consumes.
type HLIR struct {
	Consts      []ConstDef
	HeaderTypes []*HeaderType
	// Instances come from the struct whose fields have header types (the
	// conventional `struct headers_t`).
	Instances []HeaderInst
	// Metadata is the user metadata struct (all-bit fields).
	Metadata *StructType
	Parser   *ParserDecl
	Controls []*Control
}

// ConstDef is a named constant (`const bit<16> TYPE_IPV4 = 0x800;`).
type ConstDef struct {
	Name  string
	Width int
	Value uint64
}

// HeaderType is one P4 header declaration.
type HeaderType struct {
	Name   string
	Fields []Field
	Pos    token.Pos
}

// Field is one bit<N> field.
type Field struct {
	Name  string
	Width int
}

// HeaderInst is one header instance in the headers struct.
type HeaderInst struct {
	Name string // field name in the headers struct (hdr.<Name>)
	Type string
}

// StructType is a plain struct of bit fields.
type StructType struct {
	Name   string
	Fields []Field
}

// ParserDecl is the parser state machine.
type ParserDecl struct {
	Name   string
	States []*State
}

// State is one parser state: extract calls then a transition.
type State struct {
	Name string
	// Extracts lists header instance names extracted in order.
	Extracts []string
	// Select is the transition selector expression's field reference
	// (hdr.X.f), nil for an unconditional transition.
	Select *ast.FieldRef
	// Cases maps selector values to next state names; Default names the
	// unconditional or default next state ("accept" ends parsing).
	Cases   []SelectCase
	Default string
	Pos     token.Pos
}

// SelectCase is one arm of a transition select.
type SelectCase struct {
	Value uint64
	Next  string
}

// Control is one match-action control block.
type Control struct {
	Name    string
	Actions []*ast.ActionDef
	Tables  []*Table
	Apply   []ast.Stmt
	Pos     token.Pos
}

// Table is a P4 table declaration.
type Table struct {
	Name          string
	Keys          []Key
	Actions       []string
	Size          int
	DefaultAction string
	Pos           token.Pos
}

// Key is one table key component.
type Key struct {
	Ref  *ast.FieldRef // hdr.ipv4.dst_addr / meta.x / standard_metadata.y
	Kind string        // exact | lpm | ternary | range | selector
}

// HeaderType returns the named header type.
func (h *HLIR) HeaderType(name string) *HeaderType {
	for _, t := range h.HeaderTypes {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// State returns the named parser state.
func (p *ParserDecl) State(name string) *State {
	for _, s := range p.States {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// IngressControl returns the control whose name contains "Ingress".
func (h *HLIR) IngressControl() *Control { return h.controlMatching("Ingress") }

// EgressControl returns the control whose name contains "Egress".
func (h *HLIR) EgressControl() *Control { return h.controlMatching("Egress") }

func (h *HLIR) controlMatching(tag string) *Control {
	for _, c := range h.Controls {
		if containsFold(c.Name, tag) {
			return c
		}
	}
	return nil
}

func containsFold(s, sub string) bool {
	ls, lsub := lower(s), lower(sub)
	for i := 0; i+len(lsub) <= len(ls); i++ {
		if ls[i:i+len(lsub)] == lsub {
			return true
		}
	}
	return false
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 32
		}
	}
	return string(b)
}
