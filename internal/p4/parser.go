package p4

import (
	"fmt"
	"strings"

	"ipsa/internal/rp4/ast"
	"ipsa/internal/rp4/lexer"
	"ipsa/internal/rp4/token"
)

// P4 shares rP4's lexical structure; only the keyword set differs. P4's
// extra keywords (state, transition, select, apply, ...) are handled as
// contextual identifiers so the shared lexer stays simple.
var p4Keywords = map[string]token.Type{
	"header": token.KwHeader, "struct": token.KwStruct,
	"parser": token.KwParser, "control": token.KwControl,
	"action": token.KwAction, "table": token.KwTable,
	"key": token.KwKey, "actions": token.KwActions,
	"size": token.KwSize, "default_action": token.KwDefaultAction,
	"bit": token.KwBit, "bool": token.KwBool,
	"if": token.KwIf, "else": token.KwElse,
	"default": token.KwDefault,
	"true":    token.KwTrue, "false": token.KwFalse,
}

// Parser parses the P4 subset into an HLIR.
type Parser struct {
	toks   []token.Token
	pos    int
	file   string
	consts map[string]ConstDef
}

// Parse parses src. Preprocessor lines (#include, #define) are stripped.
func Parse(file, src string) (*HLIR, error) {
	var clean strings.Builder
	for _, line := range strings.Split(src, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "#") {
			clean.WriteString("\n")
			continue
		}
		clean.WriteString(line)
		clean.WriteString("\n")
	}
	toks, err := lexer.NewWithKeywords(file, clean.String(), p4Keywords).All()
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, file: file, consts: map[string]ConstDef{}}
	return p.program()
}

func (p *Parser) cur() token.Token {
	if p.pos >= len(p.toks) {
		last := token.Pos{File: p.file}
		if len(p.toks) > 0 {
			last = p.toks[len(p.toks)-1].Pos
		}
		return token.Token{Type: token.EOF, Pos: last}
	}
	return p.toks[p.pos]
}

func (p *Parser) next() token.Token { t := p.cur(); p.pos++; return t }

func (p *Parser) accept(t token.Type) bool {
	if p.cur().Type == t {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) acceptIdent(lit string) bool {
	if c := p.cur(); c.Type == token.Ident && c.Lit == lit {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(t token.Type) (token.Token, error) {
	c := p.cur()
	if c.Type != t {
		return c, fmt.Errorf("%s: expected %s, found %s", c.Pos, t, c)
	}
	p.pos++
	return c, nil
}

func (p *Parser) ident() (string, token.Pos, error) {
	c := p.cur()
	if c.Type != token.Ident {
		return "", c.Pos, fmt.Errorf("%s: expected identifier, found %s", c.Pos, c)
	}
	p.pos++
	return c.Lit, c.Pos, nil
}

func (p *Parser) program() (*HLIR, error) {
	h := &HLIR{}
	var structs []*rawStruct
	for {
		c := p.cur()
		switch {
		case c.Type == token.EOF:
			return p.finish(h, structs)
		case c.Type == token.KwHeader:
			ht, err := p.headerType()
			if err != nil {
				return nil, err
			}
			h.HeaderTypes = append(h.HeaderTypes, ht)
		case c.Type == token.KwStruct:
			s, err := p.structType()
			if err != nil {
				return nil, err
			}
			structs = append(structs, s)
		case c.Type == token.KwParser:
			pd, err := p.parserDecl()
			if err != nil {
				return nil, err
			}
			if h.Parser != nil {
				return nil, fmt.Errorf("%s: multiple parsers", c.Pos)
			}
			h.Parser = pd
		case c.Type == token.KwControl:
			ctl, err := p.controlDecl()
			if err != nil {
				return nil, err
			}
			h.Controls = append(h.Controls, ctl)
		case c.Type == token.Ident && c.Lit == "const":
			cd, err := p.constDecl()
			if err != nil {
				return nil, err
			}
			h.Consts = append(h.Consts, cd)
			p.consts[cd.Name] = cd
		case c.Type == token.Ident && c.Lit == "typedef":
			// Skip to the terminating semicolon.
			for p.cur().Type != token.Semicolon && p.cur().Type != token.EOF {
				p.pos++
			}
			p.accept(token.Semicolon)
		default:
			return nil, fmt.Errorf("%s: unexpected %s at top level", c.Pos, c)
		}
	}
}

// constDecl parses `const bit<N> NAME = NUMBER;`.
func (p *Parser) constDecl() (ConstDef, error) {
	p.pos++ // const
	w, err := p.bitType()
	if err != nil {
		return ConstDef{}, err
	}
	name, _, err := p.ident()
	if err != nil {
		return ConstDef{}, err
	}
	if _, err := p.expect(token.Assign); err != nil {
		return ConstDef{}, err
	}
	v, err := p.expect(token.Number)
	if err != nil {
		return ConstDef{}, err
	}
	if _, err := p.expect(token.Semicolon); err != nil {
		return ConstDef{}, err
	}
	return ConstDef{Name: name, Width: w, Value: v.Val}, nil
}

// rawStruct is a struct before classification as headers vs metadata.
type rawStruct struct {
	name   string
	bits   []Field      // bit-typed fields
	insts  []HeaderInst // header-typed fields
	pos    token.Pos
	plain  bool // all fields bit-typed
	hdrish bool // all fields header-typed
}

func (p *Parser) finish(h *HLIR, structs []*rawStruct) (*HLIR, error) {
	for _, s := range structs {
		switch {
		case s.hdrish && len(s.insts) > 0:
			if len(h.Instances) > 0 {
				return nil, fmt.Errorf("%s: multiple header structs", s.pos)
			}
			h.Instances = s.insts
		case s.plain && len(s.bits) > 0:
			if h.Metadata != nil {
				return nil, fmt.Errorf("%s: multiple metadata structs", s.pos)
			}
			h.Metadata = &StructType{Name: s.name, Fields: s.bits}
		}
	}
	if h.Parser == nil {
		return nil, fmt.Errorf("p4: no parser declared")
	}
	if len(h.Instances) == 0 {
		return nil, fmt.Errorf("p4: no headers struct declared")
	}
	if h.Parser.State("start") == nil {
		return nil, fmt.Errorf("p4: parser has no start state")
	}
	return h, nil
}

func (p *Parser) headerType() (*HeaderType, error) {
	start := p.next() // header
	name, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	ht := &HeaderType{Name: name, Pos: start.Pos}
	for !p.accept(token.RBrace) {
		w, err := p.bitType()
		if err != nil {
			return nil, err
		}
		fn, _, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.Semicolon); err != nil {
			return nil, err
		}
		ht.Fields = append(ht.Fields, Field{Name: fn, Width: w})
	}
	return ht, nil
}

func (p *Parser) bitType() (int, error) {
	if _, err := p.expect(token.KwBit); err != nil {
		return 0, err
	}
	if _, err := p.expect(token.LAngle); err != nil {
		return 0, err
	}
	n, err := p.expect(token.Number)
	if err != nil {
		return 0, err
	}
	if _, err := p.expect(token.RAngle); err != nil {
		return 0, err
	}
	if n.Val == 0 || n.Val > 2048 {
		return 0, fmt.Errorf("%s: bit width %d out of range", n.Pos, n.Val)
	}
	return int(n.Val), nil
}

func (p *Parser) structType() (*rawStruct, error) {
	start := p.next() // struct
	name, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	s := &rawStruct{name: name, pos: start.Pos, plain: true, hdrish: true}
	for !p.accept(token.RBrace) {
		if p.cur().Type == token.KwBit {
			w, err := p.bitType()
			if err != nil {
				return nil, err
			}
			fn, _, err := p.ident()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.Semicolon); err != nil {
				return nil, err
			}
			s.bits = append(s.bits, Field{Name: fn, Width: w})
			s.hdrish = false
			continue
		}
		typ, _, err := p.ident()
		if err != nil {
			return nil, err
		}
		fn, _, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.Semicolon); err != nil {
			return nil, err
		}
		s.insts = append(s.insts, HeaderInst{Name: fn, Type: typ})
		s.plain = false
	}
	return s, nil
}

// skipParams consumes a parenthesized parameter list without interpreting
// it (the subset relies on the conventional names hdr, meta,
// standard_metadata).
func (p *Parser) skipParams() error {
	if _, err := p.expect(token.LParen); err != nil {
		return err
	}
	depth := 1
	for depth > 0 {
		c := p.next()
		switch c.Type {
		case token.LParen:
			depth++
		case token.RParen:
			depth--
		case token.EOF:
			return fmt.Errorf("%s: unterminated parameter list", c.Pos)
		}
	}
	return nil
}

func (p *Parser) parserDecl() (*ParserDecl, error) {
	p.next() // parser
	name, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.skipParams(); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	pd := &ParserDecl{Name: name}
	for !p.accept(token.RBrace) {
		if !p.acceptIdent("state") {
			return nil, fmt.Errorf("%s: expected state in parser %s, found %s", p.cur().Pos, name, p.cur())
		}
		st, err := p.stateDecl()
		if err != nil {
			return nil, err
		}
		pd.States = append(pd.States, st)
	}
	return pd, nil
}

func (p *Parser) stateDecl() (*State, error) {
	name, pos, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	st := &State{Name: name, Pos: pos, Default: "accept"}
	for !p.accept(token.RBrace) {
		if p.acceptIdent("transition") {
			if err := p.transition(st); err != nil {
				return nil, err
			}
			continue
		}
		// Expect pkt.extract(hdr.X); (any receiver name for the packet).
		ref, err := p.fieldRef()
		if err != nil {
			return nil, err
		}
		if len(ref.Parts) < 2 || ref.Parts[len(ref.Parts)-1] != "extract" {
			return nil, fmt.Errorf("%s: only extract calls allowed in states, found %s", ref.Pos, ref)
		}
		if _, err := p.expect(token.LParen); err != nil {
			return nil, err
		}
		arg, err := p.fieldRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(token.Semicolon); err != nil {
			return nil, err
		}
		if len(arg.Parts) != 2 || arg.Parts[0] != "hdr" {
			return nil, fmt.Errorf("%s: extract argument must be hdr.<instance>, found %s", arg.Pos, arg)
		}
		st.Extracts = append(st.Extracts, arg.Parts[1])
	}
	return st, nil
}

func (p *Parser) transition(st *State) error {
	if p.acceptIdent("select") {
		if _, err := p.expect(token.LParen); err != nil {
			return err
		}
		sel, err := p.fieldRef()
		if err != nil {
			return err
		}
		st.Select = sel
		if _, err := p.expect(token.RParen); err != nil {
			return err
		}
		if _, err := p.expect(token.LBrace); err != nil {
			return err
		}
		for !p.accept(token.RBrace) {
			c := p.cur()
			switch c.Type {
			case token.Number, token.Ident:
				var val uint64
				if c.Type == token.Number {
					val = c.Val
				} else {
					cd, ok := p.consts[c.Lit]
					if !ok {
						return fmt.Errorf("%s: select case %q is not a declared const", c.Pos, c.Lit)
					}
					val = cd.Value
				}
				p.pos++
				if _, err := p.expect(token.Colon); err != nil {
					return err
				}
				next, _, err := p.ident()
				if err != nil {
					return err
				}
				p.accept(token.Semicolon)
				st.Cases = append(st.Cases, SelectCase{Value: val, Next: next})
			case token.KwDefault:
				p.pos++
				if _, err := p.expect(token.Colon); err != nil {
					return err
				}
				next, _, err := p.ident()
				if err != nil {
					return err
				}
				p.accept(token.Semicolon)
				st.Default = next
			default:
				return fmt.Errorf("%s: expected select case, found %s", c.Pos, c)
			}
		}
		p.accept(token.Semicolon)
		return nil
	}
	next, _, err := p.ident()
	if err != nil {
		return err
	}
	if _, err := p.expect(token.Semicolon); err != nil {
		return err
	}
	st.Default = next
	return nil
}

func (p *Parser) controlDecl() (*Control, error) {
	start := p.next() // control
	name, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.skipParams(); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	ctl := &Control{Name: name, Pos: start.Pos}
	for !p.accept(token.RBrace) {
		c := p.cur()
		switch {
		case c.Type == token.KwAction:
			a, err := p.actionDecl()
			if err != nil {
				return nil, err
			}
			ctl.Actions = append(ctl.Actions, a)
		case c.Type == token.KwTable:
			t, err := p.tableDecl()
			if err != nil {
				return nil, err
			}
			ctl.Tables = append(ctl.Tables, t)
		case c.Type == token.Ident && c.Lit == "apply":
			p.pos++
			body, err := p.block()
			if err != nil {
				return nil, err
			}
			ctl.Apply = body
		default:
			return nil, fmt.Errorf("%s: unexpected %s in control %s", c.Pos, c, name)
		}
	}
	return ctl, nil
}

func (p *Parser) actionDecl() (*ast.ActionDef, error) {
	start := p.next() // action
	name, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	a := &ast.ActionDef{Name: name, Pos: start.Pos}
	for !p.accept(token.RParen) {
		// Optional direction keyword (in/out/inout) before the type.
		if c := p.cur(); c.Type == token.Ident && (c.Lit == "in" || c.Lit == "out" || c.Lit == "inout") {
			p.pos++
		}
		w, err := p.bitType()
		if err != nil {
			return nil, err
		}
		pn, ppos, err := p.ident()
		if err != nil {
			return nil, err
		}
		a.Params = append(a.Params, &ast.Param{Name: pn, Width: w, Pos: ppos})
		p.accept(token.Comma)
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	a.Body = body
	return a, nil
}

func (p *Parser) tableDecl() (*Table, error) {
	start := p.next() // table
	name, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	t := &Table{Name: name, Pos: start.Pos}
	for !p.accept(token.RBrace) {
		c := p.cur()
		switch c.Type {
		case token.KwKey:
			p.pos++
			if _, err := p.expect(token.Assign); err != nil {
				return nil, err
			}
			if _, err := p.expect(token.LBrace); err != nil {
				return nil, err
			}
			for !p.accept(token.RBrace) {
				ref, err := p.fieldRef()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(token.Colon); err != nil {
					return nil, err
				}
				kind, _, err := p.ident()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(token.Semicolon); err != nil {
					return nil, err
				}
				t.Keys = append(t.Keys, Key{Ref: ref, Kind: kind})
			}
		case token.KwActions:
			p.pos++
			if _, err := p.expect(token.Assign); err != nil {
				return nil, err
			}
			if _, err := p.expect(token.LBrace); err != nil {
				return nil, err
			}
			for !p.accept(token.RBrace) {
				an, _, err := p.ident()
				if err != nil {
					return nil, err
				}
				t.Actions = append(t.Actions, an)
				if !p.accept(token.Semicolon) {
					p.accept(token.Comma)
				}
			}
		case token.KwSize:
			p.pos++
			if _, err := p.expect(token.Assign); err != nil {
				return nil, err
			}
			n, err := p.expect(token.Number)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.Semicolon); err != nil {
				return nil, err
			}
			t.Size = int(n.Val)
		case token.KwDefaultAction:
			p.pos++
			if _, err := p.expect(token.Assign); err != nil {
				return nil, err
			}
			an, _, err := p.ident()
			if err != nil {
				return nil, err
			}
			// Allow default_action = NoAction();
			if p.accept(token.LParen) {
				if _, err := p.expect(token.RParen); err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(token.Semicolon); err != nil {
				return nil, err
			}
			t.DefaultAction = an
		default:
			return nil, fmt.Errorf("%s: unexpected %s in table %s", c.Pos, c, name)
		}
	}
	return t, nil
}

// Statements and expressions reuse the rP4 AST nodes.

func (p *Parser) block() ([]ast.Stmt, error) {
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	var out []ast.Stmt
	for !p.accept(token.RBrace) {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *Parser) statement() (ast.Stmt, error) {
	c := p.cur()
	switch c.Type {
	case token.Semicolon:
		p.pos++
		return &ast.EmptyStmt{Pos: c.Pos}, nil
	case token.KwIf:
		return p.ifStmt()
	case token.Ident:
		ref, err := p.fieldRef()
		if err != nil {
			return nil, err
		}
		switch p.cur().Type {
		case token.LParen:
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.Semicolon); err != nil {
				return nil, err
			}
			recv, method := splitRecv(ref)
			return &ast.CallStmt{Recv: recv, Method: method, Args: args, Pos: c.Pos}, nil
		case token.Assign:
			p.pos++
			rhs, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.Semicolon); err != nil {
				return nil, err
			}
			return &ast.AssignStmt{LHS: ref, RHS: rhs, Pos: c.Pos}, nil
		}
		return nil, fmt.Errorf("%s: expected call or assignment after %s", p.cur().Pos, ref)
	}
	return nil, fmt.Errorf("%s: expected statement, found %s", c.Pos, c)
}

func splitRecv(ref *ast.FieldRef) (string, string) {
	if len(ref.Parts) == 1 {
		return "", ref.Parts[0]
	}
	return strings.Join(ref.Parts[:len(ref.Parts)-1], "."), ref.Parts[len(ref.Parts)-1]
}

func (p *Parser) ifStmt() (ast.Stmt, error) {
	start := p.next() // if
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	then, err := p.branch()
	if err != nil {
		return nil, err
	}
	st := &ast.IfStmt{Cond: cond, Then: then, Pos: start.Pos}
	if p.accept(token.KwElse) {
		if p.cur().Type == token.KwIf {
			elif, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			st.Else = []ast.Stmt{elif}
		} else {
			els, err := p.branch()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
	}
	return st, nil
}

func (p *Parser) branch() ([]ast.Stmt, error) {
	if p.cur().Type == token.LBrace {
		return p.block()
	}
	s, err := p.statement()
	if err != nil {
		return nil, err
	}
	if _, ok := s.(*ast.EmptyStmt); ok {
		return nil, nil
	}
	return []ast.Stmt{s}, nil
}

func (p *Parser) fieldRef() (*ast.FieldRef, error) {
	name, pos, err := p.ident()
	if err != nil {
		return nil, err
	}
	ref := &ast.FieldRef{Parts: []string{name}, Pos: pos}
	for p.accept(token.Dot) {
		part, _, err := p.ident()
		if err != nil {
			return nil, err
		}
		ref.Parts = append(ref.Parts, part)
	}
	return ref, nil
}

func (p *Parser) callArgs() ([]ast.Expr, error) {
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	var args []ast.Expr
	for !p.accept(token.RParen) {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
		if !p.accept(token.Comma) && p.cur().Type != token.RParen {
			return nil, fmt.Errorf("%s: expected , or ) in arguments", p.cur().Pos)
		}
	}
	return args, nil
}

var binPrec = map[token.Type]int{
	token.OrOr: 1, token.AndAnd: 2,
	token.Eq: 3, token.Neq: 3,
	token.LAngle: 4, token.RAngle: 4, token.Leq: 4, token.Geq: 4,
	token.Pipe: 5, token.Caret: 6, token.Amp: 7,
	token.Shl: 8, token.Shr: 8,
	token.Plus: 9, token.Minus: 9,
	token.Star: 10, token.Slash: 10, token.Percent: 10,
}

func (p *Parser) expr() (ast.Expr, error) { return p.binExpr(0) }

func (p *Parser) binExpr(minPrec int) (ast.Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur()
		prec, ok := binPrec[op.Type]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &ast.BinaryExpr{Op: op.Type, X: lhs, Y: rhs, Pos: op.Pos}
	}
}

func (p *Parser) unary() (ast.Expr, error) {
	c := p.cur()
	if c.Type == token.Not || c.Type == token.Minus {
		p.pos++
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{Op: c.Type, X: x, Pos: c.Pos}, nil
	}
	return p.primary()
}

func (p *Parser) primary() (ast.Expr, error) {
	c := p.cur()
	switch c.Type {
	case token.Number:
		p.pos++
		return &ast.NumberLit{Val: c.Val, Pos: c.Pos}, nil
	case token.KwTrue:
		p.pos++
		return &ast.BoolLit{Val: true, Pos: c.Pos}, nil
	case token.KwFalse:
		p.pos++
		return &ast.BoolLit{Val: false, Pos: c.Pos}, nil
	case token.LParen:
		p.pos++
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		return e, nil
	case token.Ident:
		ref, err := p.fieldRef()
		if err != nil {
			return nil, err
		}
		if p.cur().Type == token.LParen {
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			recv, method := splitRecv(ref)
			return &ast.CallExpr{Recv: recv, Method: method, Args: args, Pos: c.Pos}, nil
		}
		return ref, nil
	}
	return nil, fmt.Errorf("%s: expected expression, found %s", c.Pos, c)
}
