package p4

import (
	"os"
	"testing"
)

func parseBase(t *testing.T) *HLIR {
	t.Helper()
	src, err := os.ReadFile("../../testdata/base_l2l3.p4")
	if err != nil {
		t.Fatal(err)
	}
	h, err := Parse("base_l2l3.p4", string(src))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestParseBaseP4(t *testing.T) {
	h := parseBase(t)
	if len(h.HeaderTypes) != 5 {
		t.Errorf("header types = %d", len(h.HeaderTypes))
	}
	if len(h.Instances) != 5 || h.Instances[0].Name != "ethernet" || h.Instances[0].Type != "ethernet_t" {
		t.Errorf("instances: %+v", h.Instances)
	}
	if h.Metadata == nil || h.Metadata.Name != "metadata_t" || len(h.Metadata.Fields) != 6 {
		t.Fatalf("metadata: %+v", h.Metadata)
	}
	if h.Parser == nil || len(h.Parser.States) != 5 {
		t.Fatalf("parser: %+v", h.Parser)
	}
	start := h.Parser.State("start")
	if start == nil || len(start.Extracts) != 1 || start.Extracts[0] != "ethernet" {
		t.Fatalf("start state: %+v", start)
	}
	if start.Select == nil || start.Select.String() != "hdr.ethernet.ether_type" {
		t.Errorf("start select: %v", start.Select)
	}
	if len(start.Cases) != 2 || start.Cases[0].Value != 0x0800 || start.Cases[0].Next != "parse_ipv4" {
		t.Errorf("start cases: %+v", start.Cases)
	}
	if start.Default != "accept" {
		t.Errorf("start default: %q", start.Default)
	}
	tcp := h.Parser.State("parse_tcp")
	if tcp.Select != nil || tcp.Default != "accept" {
		t.Errorf("tcp state: %+v", tcp)
	}
	ing := h.IngressControl()
	if ing == nil || ing.Name != "MyIngress" {
		t.Fatalf("ingress: %+v", ing)
	}
	if len(ing.Tables) != 8 || len(ing.Actions) != 6 {
		t.Errorf("ingress tables=%d actions=%d", len(ing.Tables), len(ing.Actions))
	}
	eg := h.EgressControl()
	if eg == nil || len(eg.Tables) != 2 {
		t.Fatalf("egress: %+v", eg)
	}
	if len(ing.Apply) == 0 || len(eg.Apply) == 0 {
		t.Error("apply blocks missing")
	}
	// Header type lookup.
	if ht := h.HeaderType("ipv6_t"); ht == nil || len(ht.Fields) != 8 {
		t.Errorf("ipv6_t: %+v", h.HeaderType("ipv6_t"))
	}
	if h.HeaderType("nope") != nil {
		t.Error("phantom header type")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"no parser", `header h { bit<8> f; } struct headers_t { h h; }`},
		{"no headers struct", `header h { bit<8> f; } parser P(x) { state start { transition accept; } }`},
		{"no start state", `header h { bit<8> f; } struct hs { h h; } parser P(x) { state s0 { transition accept; } }`},
		{"two parsers", `header h { bit<8> f; } struct hs { h h; }
			parser P(x) { state start { transition accept; } }
			parser Q(x) { state start { transition accept; } }`},
		{"bad extract", `header h { bit<8> f; } struct hs { h h; }
			parser P(x) { state start { pkt.extract(nothdr); transition accept; } }`},
		{"bad state stmt", `parser P(x) { state start { 5; } }`},
		{"junk top level", `widget w { }`},
		{"zero width", `header h { bit<0> f; }`},
		{"bad table prop", `control C(x) { table t { frob = 1; } }`},
		{"unterminated params", `parser P(x`},
	}
	for _, c := range cases {
		if _, err := Parse(c.name, c.src); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestSkipsPreprocessorAndConst(t *testing.T) {
	src := `
#include <core.p4>
#define FOO 1
const bit<16> TYPE_IPV4 = 0x800;
typedef bit<48> mac_t;
header h { bit<8> f; }
struct hs { h h; }
parser P(packet_in pkt, out hs hdr) {
    state start { pkt.extract(hdr.h); transition accept; }
}
`
	h, err := Parse("pp.p4", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.HeaderTypes) != 1 {
		t.Errorf("headers: %+v", h.HeaderTypes)
	}
}
