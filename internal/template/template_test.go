package template

import (
	"strings"
	"testing"

	"ipsa/internal/pkt"
)

func validConfig() *Config {
	return &Config{
		Headers: []Header{
			{Name: "h", ID: 0, WidthBits: 16, SelOff: 8, SelWidth: 8,
				Transitions: []Transition{{Tag: 1, Next: 1}}},
			{Name: "h2", ID: 1, WidthBits: 8},
		},
		FirstHdr:  0,
		MetaBytes: 8,
		Actions:   map[string]*Action{"NoAction": {Name: "NoAction"}},
		Tables: map[string]*Table{
			"t": {Name: "t", Kind: "exact", KeyWidth: 8, Size: 4,
				Keys: []KeySel{{Name: "h.f", Operand: Operand{Kind: OpdHeader, Width: 8}}}},
		},
		Stages: map[string]*Stage{
			"s": {Name: "s", Pipe: "ingress", Tables: []string{"t"},
				Arms: []Arm{{Default: true, Action: "NoAction"}}},
		},
		IngressChain:  []string{"s"},
		TSPAssignment: map[string]int{"s": 0},
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	cfg := validConfig()
	b, err := cfg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Headers) != 2 || got.Headers[0].SelWidth != 8 {
		t.Errorf("headers: %+v", got.Headers)
	}
	if got.Tables["t"].KeyWidth != 8 {
		t.Errorf("table: %+v", got.Tables["t"])
	}
	b2, _ := got.Marshal()
	if string(b) != string(b2) {
		t.Error("marshal not stable")
	}
}

func TestUnmarshalRejectsInvalid(t *testing.T) {
	if _, err := Unmarshal([]byte("not json")); err == nil {
		t.Error("bad json accepted")
	}
	mutations := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"dup header id", func(c *Config) { c.Headers[0].Transitions = nil; c.Headers[1].ID = 0 }, "duplicate header id"},
		{"zero width", func(c *Config) { c.Headers[0].WidthBits = 0 }, "width"},
		{"bad transition", func(c *Config) { c.Headers[0].Transitions[0].Next = 9 }, "unknown id"},
		{"bad first", func(c *Config) { c.FirstHdr = 9 }, "first header"},
		{"table name mismatch", func(c *Config) { c.Tables["t"].Name = "x" }, "!= name"},
		{"no keys", func(c *Config) { c.Tables["t"].Keys = nil }, "no keys"},
		{"zero size", func(c *Config) { c.Tables["t"].Size = 0 }, "size"},
		{"stage name mismatch", func(c *Config) { c.Stages["s"].Name = "x" }, "!= name"},
		{"unknown stage table", func(c *Config) { c.Stages["s"].Tables = []string{"ghost"} }, "unknown table"},
		{"unknown arm action", func(c *Config) { c.Stages["s"].Arms[0].Action = "ghost" }, "unknown action"},
		{"bad chain", func(c *Config) { c.IngressChain = []string{"ghost"} }, "unknown stage"},
	}
	for _, m := range mutations {
		cfg := validConfig()
		m.mut(cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: accepted", m.name)
			continue
		}
		if !strings.Contains(err.Error(), m.want) {
			t.Errorf("%s: error %q lacks %q", m.name, err, m.want)
		}
	}
}

func TestHeaderLookups(t *testing.T) {
	cfg := validConfig()
	if h := cfg.HeaderByID(1); h == nil || h.Name != "h2" {
		t.Errorf("by id: %+v", h)
	}
	if h := cfg.HeaderByName("h"); h == nil || h.ID != pkt.HeaderID(0) {
		t.Errorf("by name: %+v", h)
	}
	if cfg.HeaderByID(9) != nil || cfg.HeaderByName("nope") != nil {
		t.Error("phantom header found")
	}
}

func TestCloneIsDeep(t *testing.T) {
	cfg := validConfig()
	cp, err := cfg.Clone()
	if err != nil {
		t.Fatal(err)
	}
	cp.Tables["t"].Size = 99
	cp.Headers[0].WidthBits = 99
	if cfg.Tables["t"].Size == 99 || cfg.Headers[0].WidthBits == 99 {
		t.Error("clone shares storage")
	}
}

func TestIstdLayoutMatchesSem(t *testing.T) {
	// Pin the istd constants to the layout sem produces (in_port 16 bits
	// at 0, out_port 16 at 16, drop at 32, to_cpu at 33).
	if IstdInPortOff != 0 || IstdInPortWidth != 16 ||
		IstdOutPortOff != 16 || IstdOutPortWidth != 16 ||
		IstdDropOff != 32 || IstdToCPUOff != 33 || IstdBits != 34 {
		t.Error("istd constants drifted; sem.go istdFields must match")
	}
}
