package template

// Intrinsic standard metadata (istd) layout, fixed at the start of every
// packet's metadata area. The semantic analyzer lays istd out identically;
// TestIstdLayoutMatchesSem pins the two together.
const (
	IstdInPortOff   = 0
	IstdInPortWidth = 16

	IstdOutPortOff   = 16
	IstdOutPortWidth = 16

	IstdDropOff  = 32
	IstdToCPUOff = 33

	// IstdBits is the total intrinsic metadata width.
	IstdBits = 34
)
