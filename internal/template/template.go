// Package template defines the compiled Templated Stage Processor form:
// the "template parameters, such as header field indicators, match type,
// table pointer, and action primitives" that programming a TSP means
// downloading (paper Sec. 2.2). rp4bc emits a Config as JSON; the switch's
// control channel installs it; the TSPs in internal/tsp interpret it.
package template

import (
	"encoding/json"
	"fmt"

	"ipsa/internal/pkt"
)

// OperandKind says where an operand's value comes from.
type OperandKind string

// Operand kinds.
const (
	OpdHeader OperandKind = "header" // a field of a parsed header instance
	OpdMeta   OperandKind = "meta"   // a field of the metadata area
	OpdParam  OperandKind = "param"  // an action parameter (by index)
	OpdConst  OperandKind = "const"  // an immediate
)

// Operand selects a field or value.
type Operand struct {
	Kind     OperandKind  `json:"kind"`
	Header   pkt.HeaderID `json:"header,omitempty"`
	BitOff   int          `json:"bit_off,omitempty"`
	Width    int          `json:"width,omitempty"`
	ParamIdx int          `json:"param_idx,omitempty"`
	Const    uint64       `json:"const,omitempty"`
}

// ExprKind discriminates Expr nodes.
type ExprKind string

// Expression kinds.
const (
	ExprOperand ExprKind = "operand"
	ExprBin     ExprKind = "bin"
	ExprHash    ExprKind = "hash"
	ExprRegRead ExprKind = "reg_read"
)

// ArithOp is a binary arithmetic/bitwise operator.
type ArithOp string

// Arithmetic operators.
const (
	OpAdd ArithOp = "add"
	OpSub ArithOp = "sub"
	OpMul ArithOp = "mul"
	OpDiv ArithOp = "div"
	OpMod ArithOp = "mod"
	OpAnd ArithOp = "and"
	OpOr  ArithOp = "or"
	OpXor ArithOp = "xor"
	OpShl ArithOp = "shl"
	OpShr ArithOp = "shr"
)

// Expr is a compiled value expression.
type Expr struct {
	Kind    ExprKind `json:"kind"`
	Operand *Operand `json:"operand,omitempty"`
	Op      ArithOp  `json:"op,omitempty"`
	A       *Expr    `json:"a,omitempty"`
	B       *Expr    `json:"b,omitempty"`
	// Reg and Index serve reg_read; Args serves hash.
	Reg   string  `json:"reg,omitempty"`
	Index *Expr   `json:"index,omitempty"`
	Args  []*Expr `json:"args,omitempty"`
}

// CmpOp is a comparison operator.
type CmpOp string

// Comparison operators.
const (
	CmpEq CmpOp = "eq"
	CmpNe CmpOp = "ne"
	CmpLt CmpOp = "lt"
	CmpGt CmpOp = "gt"
	CmpLe CmpOp = "le"
	CmpGe CmpOp = "ge"
)

// CondKind discriminates Cond nodes.
type CondKind string

// Condition kinds.
const (
	CondValid CondKind = "valid"
	CondCmp   CondKind = "cmp"
	CondAnd   CondKind = "and"
	CondOr    CondKind = "or"
	CondNot   CondKind = "not"
	CondBool  CondKind = "bool"
)

// Cond is a compiled boolean expression.
type Cond struct {
	Kind   CondKind     `json:"kind"`
	Header pkt.HeaderID `json:"header,omitempty"` // valid
	Cmp    CmpOp        `json:"cmp,omitempty"`
	A      *Expr        `json:"a,omitempty"` // cmp operands
	B      *Expr        `json:"b,omitempty"`
	X      *Cond        `json:"x,omitempty"` // and/or/not children
	Y      *Cond        `json:"y,omitempty"`
	Val    bool         `json:"val,omitempty"`
}

// InstrOp is an executor instruction opcode.
type InstrOp string

// Instruction opcodes. srh_advance/srh_pop are the SRv6 endpoint action
// primitives; drop/to_cpu set intrinsic metadata.
const (
	IAssign     InstrOp = "assign"
	IRegWrite   InstrOp = "reg_write"
	IDrop       InstrOp = "drop"
	IToCPU      InstrOp = "to_cpu"
	ISRHAdvance InstrOp = "srh_advance"
	ISRHPop     InstrOp = "srh_pop"
	IIf         InstrOp = "if"
)

// Instr is one compiled action statement.
type Instr struct {
	Op    InstrOp `json:"op"`
	Dst   Operand `json:"dst,omitempty"`
	Src   *Expr   `json:"src,omitempty"`
	Reg   string  `json:"reg,omitempty"`
	Index *Expr   `json:"index,omitempty"`
	Value *Expr   `json:"value,omitempty"`
	Cond  *Cond   `json:"cond,omitempty"`
	Then  []Instr `json:"then,omitempty"`
	Else  []Instr `json:"else,omitempty"`
}

// Action is a compiled action.
type Action struct {
	Name        string  `json:"name"`
	ParamWidths []int   `json:"param_widths,omitempty"`
	Body        []Instr `json:"body,omitempty"`
}

// KeySel selects one key component from a packet.
type KeySel struct {
	Name    string  `json:"name"` // canonical "inst.field", for control APIs
	Operand Operand `json:"operand"`
	Kind    string  `json:"kind"` // exact|lpm|ternary|range|hash
}

// Table is a compiled table definition.
type Table struct {
	Name       string   `json:"name"`
	Kind       string   `json:"kind"` // engine kind: exact|lpm|ternary|range
	Keys       []KeySel `json:"keys"`
	KeyWidth   int      `json:"key_width"`
	Size       int      `json:"size"`
	IsSelector bool     `json:"is_selector,omitempty"`
	// DefaultTag selects the executor arm on miss; 0 means default arm.
	DefaultTag uint64 `json:"default_tag,omitempty"`
}

// MatchKind says what a matcher node does.
type MatchKind string

// Matcher node kinds.
const (
	MatchApply MatchKind = "apply"
	MatchIf    MatchKind = "if"
)

// MatchStmt is one compiled matcher statement.
type MatchStmt struct {
	Kind  MatchKind   `json:"kind"`
	Table string      `json:"table,omitempty"`
	Cond  *Cond       `json:"cond,omitempty"`
	Then  []MatchStmt `json:"then,omitempty"`
	Else  []MatchStmt `json:"else,omitempty"`
}

// Arm maps a matched entry's tag to an action.
type Arm struct {
	Default bool   `json:"default,omitempty"`
	Tag     uint64 `json:"tag,omitempty"`
	Action  string `json:"action"`
}

// Stage is the template for one logical stage (one TSP download unit).
type Stage struct {
	Name   string         `json:"name"`
	Func   string         `json:"func,omitempty"` // owning user function
	Pipe   string         `json:"pipe"`           // ingress|egress
	Parse  []pkt.HeaderID `json:"parse,omitempty"`
	Match  []MatchStmt    `json:"match,omitempty"`
	Arms   []Arm          `json:"arms,omitempty"`
	Tables []string       `json:"tables,omitempty"`
}

// VarLen describes a variable-length header:
// total bytes = BaseBytes + value(LenOff/LenWidth) * UnitBytes.
type VarLen struct {
	LenOff    int `json:"len_off"` // bit offset of the length field
	LenWidth  int `json:"len_width"`
	BaseBytes int `json:"base_bytes"`
	UnitBytes int `json:"unit_bytes"`
}

// Transition is one implicit-parser edge.
type Transition struct {
	Tag  uint64       `json:"tag"`
	Next pkt.HeaderID `json:"next"`
}

// Header is a compiled header instance descriptor.
type Header struct {
	Name      string       `json:"name"`
	ID        pkt.HeaderID `json:"id"`
	WidthBits int          `json:"width_bits"` // fixed portion
	VarLen    *VarLen      `json:"var_len,omitempty"`
	// SelOff/SelWidth locate the implicit parser's selector field(s),
	// concatenated; zero SelWidth means terminal header.
	SelOff      int          `json:"sel_off,omitempty"`
	SelWidth    int          `json:"sel_width,omitempty"`
	Transitions []Transition `json:"transitions,omitempty"`
	// Fields maps field names to (bit offset, width) for control APIs.
	Fields map[string][2]int `json:"fields,omitempty"`
}

// Register is a compiled register array.
type Register struct {
	Name  string `json:"name"`
	Width int    `json:"width"`
	Size  int    `json:"size"`
}

// Config is the complete device configuration rp4bc emits: every header,
// register, action, table and stage template, plus the linear TSP mapping.
type Config struct {
	Headers   []Header           `json:"headers"`
	FirstHdr  pkt.HeaderID       `json:"first_hdr"` // parse entry point (ethernet)
	MetaBytes int                `json:"meta_bytes"`
	Registers []Register         `json:"registers,omitempty"`
	Actions   map[string]*Action `json:"actions"`
	Tables    map[string]*Table  `json:"tables"`
	Stages    map[string]*Stage  `json:"stages"`

	// IngressChain and EgressChain are the logical stage orders mapped
	// onto the elastic pipeline (output of the layout optimizer).
	IngressChain []string `json:"ingress_chain"`
	EgressChain  []string `json:"egress_chain"`

	// TSPAssignment maps stage name -> physical TSP index, the result of
	// stage merging + layout (several stages may share one TSP).
	TSPAssignment map[string]int `json:"tsp_assignment"`

	// Patch, when present, is rp4bc's incremental-update manifest: the
	// device writes exactly these TSP templates and touches exactly these
	// tables instead of diffing the whole configuration — the paper's
	// "second output ... the new TSP templates and switch configuration".
	Patch *PatchSpec `json:"patch,omitempty"`
}

// PatchSpec is the incremental-update manifest.
type PatchSpec struct {
	RewrittenTSPs []int    `json:"rewritten_tsps,omitempty"`
	NewTables     []string `json:"new_tables,omitempty"`
	RemovedTables []string `json:"removed_tables,omitempty"`
}

// Marshal renders the config as indented JSON.
func (c *Config) Marshal() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// Unmarshal parses a JSON config.
func Unmarshal(data []byte) (*Config, error) {
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("template: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Validate performs structural checks a device would apply before
// accepting a downloaded configuration.
func (c *Config) Validate() error {
	ids := make(map[pkt.HeaderID]bool)
	for _, h := range c.Headers {
		if ids[h.ID] {
			return fmt.Errorf("template: duplicate header id %d", h.ID)
		}
		ids[h.ID] = true
		if h.WidthBits <= 0 {
			return fmt.Errorf("template: header %q has width %d", h.Name, h.WidthBits)
		}
		for _, tr := range h.Transitions {
			if !knownHeader(c.Headers, tr.Next) {
				return fmt.Errorf("template: header %q transitions to unknown id %d", h.Name, tr.Next)
			}
		}
	}
	if len(c.Headers) > 0 && !knownHeader(c.Headers, c.FirstHdr) {
		return fmt.Errorf("template: first header id %d unknown", c.FirstHdr)
	}
	for name, t := range c.Tables {
		if t.Name != name {
			return fmt.Errorf("template: table map key %q != name %q", name, t.Name)
		}
		if len(t.Keys) == 0 {
			return fmt.Errorf("template: table %q has no keys", name)
		}
		if t.Size <= 0 {
			return fmt.Errorf("template: table %q has size %d", name, t.Size)
		}
	}
	for name, s := range c.Stages {
		if s.Name != name {
			return fmt.Errorf("template: stage map key %q != name %q", name, s.Name)
		}
		for _, tn := range s.Tables {
			if _, ok := c.Tables[tn]; !ok {
				return fmt.Errorf("template: stage %q uses unknown table %q", name, tn)
			}
		}
		for _, arm := range s.Arms {
			if _, ok := c.Actions[arm.Action]; !ok {
				return fmt.Errorf("template: stage %q arm references unknown action %q", name, arm.Action)
			}
		}
	}
	for _, chain := range [][]string{c.IngressChain, c.EgressChain} {
		for _, sn := range chain {
			if _, ok := c.Stages[sn]; !ok {
				return fmt.Errorf("template: chain references unknown stage %q", sn)
			}
		}
	}
	return nil
}

func knownHeader(hs []Header, id pkt.HeaderID) bool {
	for _, h := range hs {
		if h.ID == id {
			return true
		}
	}
	return false
}

// HeaderByID returns the header descriptor with the given id.
func (c *Config) HeaderByID(id pkt.HeaderID) *Header {
	for i := range c.Headers {
		if c.Headers[i].ID == id {
			return &c.Headers[i]
		}
	}
	return nil
}

// HeaderByName returns the header descriptor with the given instance name.
func (c *Config) HeaderByName(name string) *Header {
	for i := range c.Headers {
		if c.Headers[i].Name == name {
			return &c.Headers[i]
		}
	}
	return nil
}

// Clone deep-copies the config via JSON round-trip; used when deriving an
// updated design from a base design.
func (c *Config) Clone() (*Config, error) {
	b, err := json.Marshal(c)
	if err != nil {
		return nil, err
	}
	var out Config
	if err := json.Unmarshal(b, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
