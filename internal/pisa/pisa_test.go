package pisa

import (
	"os"
	"testing"

	"ipsa/internal/compiler/backend"
	"ipsa/internal/ctrlplane"
	"ipsa/internal/pkt"
	"ipsa/internal/rp4/parser"
	"ipsa/internal/template"
)

var (
	routerMAC = pkt.MAC{0x02, 0, 0, 0, 0, 0x01}
	hostMAC   = pkt.MAC{0x02, 0, 0, 0, 0, 0x02}
	nhMAC     = pkt.MAC{0x02, 0, 0, 0, 0, 0x03}
	smacMAC   = pkt.MAC{0x02, 0, 0, 0, 0, 0x04}
)

func baseConfig(t *testing.T) *template.Config {
	t.Helper()
	src, err := os.ReadFile("../../testdata/base_l2l3.rp4")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parser.Parse("base_l2l3.rp4", string(src))
	if err != nil {
		t.Fatal(err)
	}
	opts := backend.DefaultOptions()
	opts.NumTSPs = 16
	// PISA's own compiler does not do IPSA's TSP merging; one logical
	// stage maps to one physical stage.
	opts.EnableMerge = false
	c, err := backend.Compile(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c.Config
}

func populate(t *testing.T, sw *Switch) {
	t.Helper()
	ins := func(req ctrlplane.EntryReq) {
		if _, err := sw.InsertEntry(req); err != nil {
			t.Fatalf("insert %s: %v", req.Table, err)
		}
	}
	ins(ctrlplane.EntryReq{Table: "port_map_tbl", Keys: []ctrlplane.FieldValue{{Value: 1}}, Tag: 1, Params: []uint64{10}})
	ins(ctrlplane.EntryReq{Table: "bd_vrf_tbl", Keys: []ctrlplane.FieldValue{{Value: 10}}, Tag: 1, Params: []uint64{100, 1}})
	ins(ctrlplane.EntryReq{Table: "l2_l3_tbl", Keys: []ctrlplane.FieldValue{{Value: 100}, {Value: routerMAC.Uint64()}}, Tag: 1})
	ins(ctrlplane.EntryReq{Table: "ipv4_host", Keys: []ctrlplane.FieldValue{{Value: 1}, {Value: 0x0A000002}}, Tag: 1, Params: []uint64{7}})
	ins(ctrlplane.EntryReq{Table: "nexthop_tbl", Keys: []ctrlplane.FieldValue{{Value: 7}}, Tag: 1, Params: []uint64{200, nhMAC.Uint64()}})
	ins(ctrlplane.EntryReq{Table: "smac_tbl", Keys: []ctrlplane.FieldValue{{Value: 200}}, Tag: 1, Params: []uint64{smacMAC.Uint64()}})
	ins(ctrlplane.EntryReq{Table: "dmac_tbl", Keys: []ctrlplane.FieldValue{{Value: 200}, {Value: nhMAC.Uint64()}}, Tag: 1, Params: []uint64{3}})
}

func v4pkt(t *testing.T) []byte {
	t.Helper()
	raw, err := pkt.Serialize(
		&pkt.Ethernet{Dst: routerMAC, Src: hostMAC, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoTCP, Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 0, 0, 2}},
		&pkt.TCP{SrcPort: 1, DstPort: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestPISAForwardsBaseDesign(t *testing.T) {
	sw, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st, err := sw.ApplyConfig(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if !st.Full || st.TSPsWritten != 16 {
		t.Errorf("apply: %+v", st)
	}
	populate(t, sw)
	p, err := sw.ProcessPacket(v4pkt(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Drop || p.OutPort != 3 {
		t.Fatalf("drop=%v out=%d", p.Drop, p.OutPort)
	}
	var ip pkt.IPv4
	if err := ip.Decode(p.Data[pkt.EthernetLen:]); err != nil {
		t.Fatal(err)
	}
	if ip.TTL != 63 {
		t.Errorf("ttl = %d", ip.TTL)
	}
	if sw.Faults().BadTemplate.Load() != 0 {
		t.Errorf("faults: %+v", sw.Faults())
	}
	proc, drop := sw.Stats()
	if proc != 1 || drop != 0 {
		t.Errorf("stats: %d/%d", proc, drop)
	}
}

func TestPISAFullReloadLosesEntries(t *testing.T) {
	sw, _ := New(DefaultOptions())
	cfg := baseConfig(t)
	if _, err := sw.ApplyConfig(cfg); err != nil {
		t.Fatal(err)
	}
	populate(t, sw)
	// A PISA "update" (even a no-op redeploy) rebuilds the pipeline and
	// discards every table entry — the architectural cost the paper
	// contrasts with IPSA's incremental patch.
	if _, err := sw.ApplyConfig(cfg); err != nil {
		t.Fatal(err)
	}
	p, err := sw.ProcessPacket(v4pkt(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Drop {
		t.Error("entries survived a full reload (they must not, matching bmv2)")
	}
	if sw.Reloads() != 2 {
		t.Errorf("reloads = %d", sw.Reloads())
	}
	// Repopulating restores forwarding.
	populate(t, sw)
	p, _ = sw.ProcessPacket(v4pkt(t), 1)
	if p.Drop {
		t.Error("repopulated pipeline still dropping")
	}
}

func TestPISAEffectiveStageConsumption(t *testing.T) {
	sw, _ := New(Options{IngressStages: 20, EgressStages: 18, StageBlocks: 2, BlockWidth: 128, BlockDepth: 4096})
	cfg := baseConfig(t)
	if _, err := sw.ApplyConfig(cfg); err != nil {
		t.Fatal(err)
	}
	// With only 2 blocks per stage, the big FIB/nexthop/dmac tables span
	// several consecutive stages; more physical stages are consumed than
	// logical stages exist.
	logical := len(cfg.IngressChain) + len(cfg.EgressChain)
	if sw.EffectiveStagesUsed() <= logical {
		t.Errorf("effective stages %d should exceed logical %d under table spanning",
			sw.EffectiveStagesUsed(), logical)
	}
}

func TestPISATooSmallPipeline(t *testing.T) {
	sw, _ := New(Options{IngressStages: 3, EgressStages: 1, StageBlocks: 8, BlockWidth: 128, BlockDepth: 4096})
	if _, err := sw.ApplyConfig(baseConfig(t)); err == nil {
		t.Error("base design accepted on 3 ingress stages")
	}
}

func TestPISARegistersResetOnReload(t *testing.T) {
	// Load the flow-probe design into PISA and verify register state does
	// not survive a reload (unlike ipbm).
	src, _ := os.ReadFile("../../testdata/base_l2l3.rp4")
	prog, err := parser.Parse("base.rp4", string(src))
	if err != nil {
		t.Fatal(err)
	}
	opts := backend.DefaultOptions()
	opts.NumTSPs = 16
	opts.EnableMerge = false
	w, err := backend.NewWorkspace(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	loader := func(name string) (string, error) {
		b, err := os.ReadFile("../../testdata/" + name)
		return string(b), err
	}
	scriptSrc, _ := os.ReadFile("../../testdata/flowprobe.script")
	rep, err := w.ApplyScript(string(scriptSrc), loader)
	if err != nil {
		t.Fatal(err)
	}
	sw, _ := New(DefaultOptions())
	if _, err := sw.ApplyConfig(rep.Config); err != nil {
		t.Fatal(err)
	}
	populate(t, sw)
	if _, err := sw.InsertEntry(ctrlplane.EntryReq{
		Table: "flow_probe",
		Keys:  []ctrlplane.FieldValue{{Value: 0x0A000001}, {Value: 0x0A000002}},
		Tag:   1, Params: []uint64{5, 100},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := sw.ProcessPacket(v4pkt(t), 1); err != nil {
			t.Fatal(err)
		}
	}
	v, err := sw.ReadRegister("flow_cnt", 5)
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Errorf("flow_cnt = %d, want 3", v)
	}
	if _, err := sw.ApplyConfig(rep.Config); err != nil {
		t.Fatal(err)
	}
	v, err = sw.ReadRegister("flow_cnt", 5)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("flow_cnt survived reload: %d", v)
	}
}
