// Package pisa is the comparison baseline: a PISA software switch in the
// style of bmv2 (paper Sec. 4.3 compares bmv2 against ipbm). It executes
// the same compiled stage templates as ipbm but with PISA's architectural
// properties, which are exactly what the paper criticizes:
//
//   - a standalone front-end parser that parses every header up front;
//   - a fixed number of ingress and egress physical stages, traversed by
//     every packet whether programmed or not;
//   - memory prorated per stage: a table bigger than one stage's share
//     combines the memory of consecutive stages, consuming them;
//   - a deparser that reassembles the packet at egress;
//   - and, crucially, no incremental update: ApplyConfig is always a full
//     pipeline rebuild that discards every table entry, so the controller
//     must repopulate all tables afterwards.
package pisa

import (
	"fmt"
	"log/slog"
	"sync"
	"time"

	"ipsa/internal/ctrlplane"
	"ipsa/internal/dataplane"
	"ipsa/internal/intmd"
	"ipsa/internal/match"
	"ipsa/internal/pkt"
	"ipsa/internal/template"
	"ipsa/internal/tsp"
	"ipsa/internal/verdict"
)

// Options sizes the PISA pipeline.
type Options struct {
	// IngressStages and EgressStages are the fixed physical stage counts.
	IngressStages int
	EgressStages  int
	// StageBlocks is each stage's memory share in pool blocks; a larger
	// table spans consecutive stages.
	StageBlocks int
	// BlockWidth/BlockDepth size one memory block (bits × entries).
	BlockWidth, BlockDepth int
	// Exec selects the stage executor (compiled by default; the
	// tree-walking interpreter for differential testing).
	Exec tsp.ExecMode
	// IntSwitchID identifies this switch in INT hop records.
	IntSwitchID uint32
	// Logger receives structured diagnostics (nil uses slog.Default).
	Logger *slog.Logger
}

// DefaultOptions mirrors a mid-sized fixed-function budget.
func DefaultOptions() Options {
	return Options{
		IngressStages: 12,
		EgressStages:  4,
		StageBlocks:   8,
		BlockWidth:    128,
		BlockDepth:    4096,
		IntSwitchID:   2, // distinguish from ipbm's default 1 in multi-hop runs
	}
}

// physStage is one fixed physical stage.
type physStage struct {
	runtime *tsp.StageRuntime // nil = unprogrammed, still traversed
}

// Switch is the PISA behavioral model.
type Switch struct {
	opts Options
	log  *slog.Logger

	// dp holds the installed design snapshot (config, parser, registers,
	// SRv6 IDs), fault counters and the Env pool, shared with ipbm so the
	// per-packet lifecycle is identical infrastructure.
	dp *dataplane.Core

	mu        sync.RWMutex
	ingress   []physStage
	egress    []physStage
	tables    map[string]match.Engine
	selectors map[string]map[string][]match.Result
	tstats    map[string]*tableCounters

	processed uint64
	dropped   uint64
	// dropReasons is the per-reason loss ledger (indexed by
	// verdict.DropReason minus one): a stage drop is "acl", a survivor
	// with no egress pick is "no_port" or — when admission flagged the
	// frame unparseable — "parse_error". pisa has no TM or TX path, so
	// the other reasons stay zero.
	dropReasons [verdict.NumReasons]uint64

	// effectiveStagesUsed counts physical stages consumed, including the
	// extra stages spanned by oversized tables.
	effectiveStagesUsed int
	// reloads counts full pipeline rebuilds.
	reloads int

	// INT state: whether stamping is compiled in, the sink's stage-ID
	// name map, the retained reports, and a test-injectable clock.
	intOn      bool
	intNames   map[uint16]string
	intReports *intmd.ReportRing
	intNow     func() int64
}

type tableCounters struct {
	mu           sync.Mutex
	hits, misses uint64
}

// New builds an unprogrammed PISA switch.
func New(opts Options) (*Switch, error) {
	if opts.IngressStages <= 0 || opts.EgressStages <= 0 || opts.StageBlocks <= 0 {
		return nil, fmt.Errorf("pisa: invalid sizing %+v", opts)
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	s := &Switch{
		opts:      opts,
		log:       logger.With("component", "pisa"),
		dp:        dataplane.NewCore(),
		ingress:   make([]physStage, opts.IngressStages),
		egress:    make([]physStage, opts.EgressStages),
		tables:    make(map[string]match.Engine),
		selectors: make(map[string]map[string][]match.Result),
		tstats:    make(map[string]*tableCounters),
	}
	s.dp.SetLogger(logger.With("component", "dataplane", "switch", "pisa"))
	return s, nil
}

// Reloads reports how many full rebuilds have happened.
func (s *Switch) Reloads() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.reloads
}

// EffectiveStagesUsed reports physical stages consumed by the installed
// design, counting stages burned by table spanning.
func (s *Switch) EffectiveStagesUsed() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.effectiveStagesUsed
}

// stageSpan computes how many physical stages a table's memory consumes.
func (s *Switch) stageSpan(t *template.Table) int {
	blocks := blocksFor(t, s.opts)
	span := (blocks + s.opts.StageBlocks - 1) / s.opts.StageBlocks
	if span < 1 {
		span = 1
	}
	return span
}

func blocksFor(t *template.Table, o Options) int {
	wc := (t.KeyWidth + o.BlockWidth - 1) / o.BlockWidth
	dc := (t.Size + o.BlockDepth - 1) / o.BlockDepth
	return wc * dc
}

// ApplyConfig performs PISA's only update mode: a full rebuild. Every
// existing table is discarded (entries and all), every stage is
// reprogrammed, registers are reset.
func (s *Switch) ApplyConfig(cfg *template.Config) (*ctrlplane.ApplyStats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()

	runtimes, err := tsp.BuildStageRuntimesOpts(cfg, tsp.BuildOpts{Mode: s.opts.Exec, Int: s.intOn})
	if err != nil {
		return nil, err
	}
	// Map logical chains onto fixed stages in order, accounting for table
	// spans.
	newIngress := make([]physStage, s.opts.IngressStages)
	newEgress := make([]physStage, s.opts.EgressStages)
	used := 0
	place := func(chain []string, phys []physStage) error {
		next := 0
		for _, sn := range chain {
			st := cfg.Stages[sn]
			span := 1
			for _, tn := range st.Tables {
				if sp := s.stageSpan(cfg.Tables[tn]); sp > span {
					span = sp
				}
			}
			if next+span > len(phys) {
				return fmt.Errorf("pisa: stage %q needs %d physical stages at position %d, only %d available",
					sn, span, next, len(phys))
			}
			phys[next] = physStage{runtime: runtimes[sn]}
			next += span // spanned stages are consumed (paper Sec. 5)
			used += span
		}
		return nil
	}
	if err := place(cfg.IngressChain, newIngress); err != nil {
		return nil, err
	}
	if err := place(cfg.EgressChain, newEgress); err != nil {
		return nil, err
	}

	// Rebuild all tables empty: the full-reload penalty.
	tables := make(map[string]match.Engine, len(cfg.Tables))
	selectors := make(map[string]map[string][]match.Result)
	tstats := make(map[string]*tableCounters, len(cfg.Tables))
	for name, t := range cfg.Tables {
		kind, err := match.ParseKind(t.Kind)
		if err != nil {
			return nil, err
		}
		eng, err := match.New(kind, t.KeyWidth, t.Size)
		if err != nil {
			return nil, err
		}
		tables[name] = eng
		if t.IsSelector {
			selectors[name] = make(map[string][]match.Result)
		}
		tstats[name] = &tableCounters{}
	}

	s.ingress = newIngress
	s.egress = newEgress
	s.tables = tables
	s.selectors = selectors
	s.tstats = tstats
	// Registers reset on every rebuild, unlike ipbm's additive update.
	s.dp.Install(cfg, tsp.NewRegisterFile(cfg.Registers))
	s.publishIntState(cfg)
	s.effectiveStagesUsed = used
	s.reloads++
	s.log.Debug("full pipeline rebuild (PISA has no incremental update)",
		"tables_rebuilt", len(cfg.Tables), "stages_used", used,
		"reloads", s.reloads, "load", time.Since(start))

	return &ctrlplane.ApplyStats{
		Full:          true,
		TSPsWritten:   s.opts.IngressStages + s.opts.EgressStages,
		TablesCreated: len(cfg.Tables),
		LoadNanos:     int64(time.Since(start)),
	}, nil
}

// Lookup implements tsp.TableBackend over per-stage memory.
func (s *Switch) Lookup(table string, key []byte) (match.Result, bool) {
	s.mu.RLock()
	eng := s.tables[table]
	tc := s.tstats[table]
	s.mu.RUnlock()
	if eng == nil {
		return match.Result{}, false
	}
	r, ok := eng.Lookup(key)
	if tc != nil {
		tc.mu.Lock()
		if ok {
			tc.hits++
		} else {
			tc.misses++
		}
		tc.mu.Unlock()
	}
	return r, ok
}

// LookupSelector: PISA models ECMP with action-selector externs; the
// behavioral model resolves group members by hash like ipbm does.
func (s *Switch) LookupSelector(table string, groupKey []byte, h uint64) (match.Result, bool) {
	s.mu.RLock()
	members := s.selectors[table][string(groupKey)]
	s.mu.RUnlock()
	if len(members) == 0 {
		return match.Result{}, false
	}
	return members[h%uint64(len(members))], true
}

// frontParse is PISA's standalone parser: it walks the entire parse graph
// up front regardless of what the stages need (paper Sec. 2.1).
func (s *Switch) frontParse(d *dataplane.Design, p *pkt.Packet) {
	// Parsing "everything" = ensuring every header; the walk stops at the
	// first header the packet doesn't carry, exactly like a front parser
	// reaching an accept state.
	for i := range d.Cfg.Headers {
		d.Parser.Ensure(p, d.Cfg.Headers[i].ID)
	}
}

// deparse models PISA's egress deparser: the packet is reassembled from
// the parsed representation into a fresh buffer.
func (s *Switch) deparse(p *pkt.Packet) {
	out := make([]byte, len(p.Data))
	copy(out, p.Data)
	p.Data = out
}

// ProcessPacket pushes a frame through the fixed pipeline. The returned
// packet is caller-owned; the per-packet Env comes from the shared
// dataplane pool.
func (s *Switch) ProcessPacket(data []byte, inPort int) (*pkt.Packet, error) {
	d := s.dp.Design()
	if d == nil {
		return nil, fmt.Errorf("pisa: no configuration installed")
	}
	s.mu.RLock()
	ing := s.ingress
	eg := s.egress
	s.mu.RUnlock()
	p, err := d.NewPacket(data, inPort)
	if err != nil {
		return nil, err
	}
	// pisa skips dataplane.BeginPacket (no telemetry hooks), so the INT
	// ingress timestamp is stamped here.
	if ctx := s.dp.IntCtx(); ctx != nil {
		p.IngressNanos = ctx.NowNanos()
	}
	env := s.dp.GetEnv(d)

	s.frontParse(d, p)
	// Every physical stage is traversed, programmed or not.
	for i := range ing {
		if p.Drop {
			break
		}
		if ing[i].runtime != nil {
			ing[i].runtime.Execute(p, d.Parser, s, env)
		}
	}
	if !p.Drop {
		for i := range eg {
			if p.Drop {
				break
			}
			if eg[i].runtime != nil {
				eg[i].runtime.Execute(p, d.Parser, s, env)
			}
		}
	}
	s.dp.PutEnv(env)
	if !p.Drop {
		dataplane.SurfaceOutPort(p)
	}
	s.mu.Lock()
	if p.Drop {
		s.dropped++
		// An admission parse stamp wins over the program drop, matching
		// dataplane.DropVerdict: a catch-all drop action that disposed of
		// an unparseable frame is a parse loss, not ACL policy.
		if p.DropReason == verdict.ReasonParse {
			s.dropReasons[verdict.ReasonParse-1]++
		} else {
			s.dropReasons[verdict.ReasonACL-1]++
		}
	} else {
		s.processed++
		if p.OutPort < 0 {
			if p.DropReason == verdict.ReasonParse {
				s.dropReasons[verdict.ReasonParse-1]++
			} else {
				s.dropReasons[verdict.ReasonNoPort-1]++
			}
		}
	}
	s.mu.Unlock()
	if p.Drop {
		return p, nil
	}
	// INT sink runs before the deparser so the reassembled packet never
	// carries the trailer off the switch.
	s.intSinkProcess(p)
	s.deparse(p)
	return p, nil
}

// Config returns the installed configuration (nil before the first
// ApplyConfig).
func (s *Switch) Config() *template.Config {
	if d := s.dp.Design(); d != nil {
		return d.Cfg
	}
	return nil
}

// InsertEntry installs one table entry (same encoding as ipbm).
func (s *Switch) InsertEntry(req ctrlplane.EntryReq) (int, error) {
	cfg := s.Config()
	if cfg == nil {
		return 0, fmt.Errorf("pisa: no configuration installed")
	}
	t, ok := cfg.Tables[req.Table]
	if !ok {
		return 0, fmt.Errorf("pisa: unknown table %q", req.Table)
	}
	if t.IsSelector {
		return 0, fmt.Errorf("pisa: table %q is a selector; use AddMember", req.Table)
	}
	entry, err := ctrlplane.EncodeEntry(t, req)
	if err != nil {
		return 0, err
	}
	s.mu.RLock()
	eng := s.tables[req.Table]
	s.mu.RUnlock()
	if eng == nil {
		return 0, fmt.Errorf("pisa: table %q not instantiated", req.Table)
	}
	return eng.Insert(entry)
}

// AddMember adds an ECMP member to a selector table.
func (s *Switch) AddMember(req ctrlplane.MemberReq) error {
	cfg := s.Config()
	if cfg == nil {
		return fmt.Errorf("pisa: no configuration installed")
	}
	t, ok := cfg.Tables[req.Table]
	if !ok || !t.IsSelector {
		return fmt.Errorf("pisa: table %q is not a selector", req.Table)
	}
	group, err := ctrlplane.EncodeGroupKey(t, req.Group)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.selectors[req.Table] == nil {
		return fmt.Errorf("pisa: table %q not instantiated", req.Table)
	}
	s.selectors[req.Table][string(group)] = append(s.selectors[req.Table][string(group)],
		match.Result{ActionID: req.Tag, Params: append([]uint64(nil), req.Params...)})
	return nil
}

// TableStats reads a table's counters.
func (s *Switch) TableStats(table string) (*ctrlplane.TableStats, error) {
	s.mu.RLock()
	tc := s.tstats[table]
	s.mu.RUnlock()
	if tc == nil {
		return nil, fmt.Errorf("pisa: unknown table %q", table)
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return &ctrlplane.TableStats{Hits: tc.hits, Misses: tc.misses}, nil
}

// Stats reports processed/dropped packets.
func (s *Switch) Stats() (processed, dropped uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.processed, s.dropped
}

// DropReasons snapshots the per-reason loss ledger, keyed by the shared
// taxonomy's reason strings. Reasons that never fired are omitted.
func (s *Switch) DropReasons() map[string]uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]uint64)
	for i, n := range s.dropReasons {
		if n > 0 {
			out[verdict.DropReason(i+1).String()] = n
		}
	}
	return out
}

// Faults exposes executor fault counters.
func (s *Switch) Faults() *tsp.Faults { return s.dp.Faults() }

// ReadRegister reads one register cell.
func (s *Switch) ReadRegister(name string, index uint64) (uint64, error) {
	d := s.dp.Design()
	if d == nil {
		return 0, fmt.Errorf("pisa: no configuration installed")
	}
	v, ok := d.Regs.Read(name, index)
	if !ok {
		return 0, fmt.Errorf("pisa: register %q[%d] unreadable", name, index)
	}
	return v, nil
}
