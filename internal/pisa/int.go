package pisa

// int.go gives the PISA baseline the same INT-MD capability as ipbm so
// the two models can be compared like-for-like — with one architectural
// difference that is the point of the comparison: PISA has no in-situ
// update path, so toggling INT is a full pipeline rebuild that discards
// every installed table entry (the controller must repopulate), exactly
// like any other reconfiguration on a fixed-function target.

import (
	"ipsa/internal/intmd"
	"ipsa/internal/pkt"
	"ipsa/internal/template"
	"ipsa/internal/tsp"
)

// IntEnabled reports whether INT stamping is compiled into the stages.
func (s *Switch) IntEnabled() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.intOn
}

// SetInt enables or disables INT stamping. Unlike ipbm's drain-and-swap,
// this is PISA's only update mode: a full ApplyConfig rebuild, which
// resets registers and empties every table.
func (s *Switch) SetInt(enabled bool) error {
	s.mu.Lock()
	if s.intOn == enabled {
		s.mu.Unlock()
		return nil
	}
	s.intOn = enabled
	s.mu.Unlock()
	cfg := s.Config()
	if cfg == nil {
		return nil // the flag shapes the next ApplyConfig
	}
	if _, err := s.ApplyConfig(cfg); err != nil {
		s.mu.Lock()
		s.intOn = !enabled
		s.mu.Unlock()
		return err
	}
	return nil
}

// publishIntState installs (cfg non-nil and INT on) or clears the
// stamping context and sink view. Called with s.mu held.
func (s *Switch) publishIntState(cfg *template.Config) {
	if cfg == nil || !s.intOn {
		s.dp.SetIntCtx(nil)
		s.intNames = nil
		return
	}
	if s.intReports == nil {
		s.intReports = intmd.NewReportRing(0)
	}
	names := make(map[uint16]string, len(cfg.Stages))
	for name := range cfg.Stages {
		names[tsp.IntStageID(name)] = name
	}
	s.intNames = names
	s.dp.SetIntCtx(&tsp.IntStampCtx{
		SwitchID: s.opts.IntSwitchID,
		Now:      s.intNow,
		// No traffic manager in the fixed model: queue depth stamps 0.
	})
}

// intSinkProcess strips a survivor's INT trailer at the egress boundary
// (before the deparser copies the packet) and retains the decoded report.
func (s *Switch) intSinkProcess(p *pkt.Packet) {
	s.mu.RLock()
	names := s.intNames
	ring := s.intReports
	s.mu.RUnlock()
	if names == nil || ring == nil {
		return
	}
	hops, payloadLen, ok := intmd.Parse(p.Data)
	if !ok {
		return
	}
	p.Data = p.Data[:payloadLen]
	for i := range hops {
		hops[i].Stage = names[hops[i].StageID]
	}
	ring.Push(intmd.Report{InPort: p.InPort, OutPort: p.OutPort, Bytes: payloadLen, Hops: hops})
}

// IntReport returns up to max sink-decoded reports, newest first (0 =
// all retained). Empty while INT is disabled.
func (s *Switch) IntReport(max int) []intmd.Report {
	s.mu.RLock()
	ring := s.intReports
	s.mu.RUnlock()
	if ring == nil {
		return nil
	}
	return ring.Dump(max)
}
