package mem

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ipsa/internal/match"
)

// Table is a logical table: a match engine plus the pool blocks backing it.
// Network operators see only the logical table; block bookkeeping is
// internal (paper: "once deployed, network operators are only aware of the
// logical tables").
type Table struct {
	Name     string
	KeyWidth int // W in bits
	Depth    int // D entries

	engine match.Engine
	blocks []BlockID

	hits   atomic.Uint64
	misses atomic.Uint64
}

// Engine exposes the lookup engine.
func (t *Table) Engine() match.Engine { return t.engine }

// Blocks returns the backing block ids.
func (t *Table) Blocks() []BlockID { return append([]BlockID(nil), t.blocks...) }

// Lookup performs a lookup and maintains hit/miss counters.
func (t *Table) Lookup(key []byte) (match.Result, bool) {
	r, ok := t.engine.Lookup(key)
	if ok {
		t.hits.Add(1)
	} else {
		t.misses.Add(1)
	}
	return r, ok
}

// Stats reports cumulative hits and misses.
func (t *Table) Stats() (hits, misses uint64) {
	return t.hits.Load(), t.misses.Load()
}

// LookupNoCount is Lookup without the hit/miss accounting. Batch
// executors probe through it and credit the counts in bulk via
// AddLookupStats, so the per-packet cost drops from two shared atomic
// adds to two register increments.
func (t *Table) LookupNoCount(key []byte) (match.Result, bool) {
	return t.engine.Lookup(key)
}

// AddLookupStats credits hit/miss counts accumulated externally (by a
// batch of LookupNoCount probes) to the table's counters.
func (t *Table) AddLookupStats(hits, misses uint64) {
	if hits != 0 {
		t.hits.Add(hits)
	}
	if misses != 0 {
		t.misses.Add(misses)
	}
}

// enginePrefetcher is the optional capability some match engines (the
// exact-match open-addressing table) expose for warming a key's bucket.
type enginePrefetcher interface {
	Prefetch(key []byte) uint64
}

// CanPrefetch reports whether the table's engine supports bucket
// prefetch. Stable for the table's lifetime: Migrate replaces the engine
// but never its match kind.
func (t *Table) CanPrefetch() bool {
	_, ok := t.engine.(enginePrefetcher)
	return ok
}

// Prefetch touches the engine bucket key hashes to — the batch executor
// calls it one packet ahead of the real Lookup so the bucket line is warm
// when the lookup lands. No-op (returns 0) on engines without the
// capability; never counts as a hit or miss.
func (t *Table) Prefetch(key []byte) uint64 {
	if pf, ok := t.engine.(enginePrefetcher); ok {
		return pf.Prefetch(key)
	}
	return 0
}

// PrefetchUseful reports whether a one-ahead prefetch would currently
// help: true only when the engine supports it AND its resident probe
// array has outgrown the cache sizes where speculative touches are pure
// overhead. Re-evaluated by batch executors per batch, so tables grow
// into prefetching as entries are installed.
func (t *Table) PrefetchUseful() bool {
	if adv, ok := t.engine.(interface{ PrefetchUseful() bool }); ok {
		return adv.PrefetchUseful()
	}
	return false
}

// Manager owns the pool, the crossbar and every logical table — the
// Storage Module (SM) of ipbm.
type Manager struct {
	mu     sync.Mutex
	pool   *Pool
	xbar   *Crossbar
	tables map[string]*Table
	// migrations counts entries moved across clusters, an input to the
	// update-cost model.
	migratedEntries int
}

// NewManager builds a storage manager with tspCount stage processors
// attached over a crossbar of the given kind.
func NewManager(cfg Config, kind CrossbarKind, tspCount int) (*Manager, error) {
	pool, err := NewPool(cfg)
	if err != nil {
		return nil, err
	}
	xbar, err := NewCrossbar(kind, pool, tspCount)
	if err != nil {
		return nil, err
	}
	return &Manager{pool: pool, xbar: xbar, tables: make(map[string]*Table)}, nil
}

// Pool exposes the block pool.
func (m *Manager) Pool() *Pool { return m.pool }

// Crossbar exposes the interconnect.
func (m *Manager) Crossbar() *Crossbar { return m.xbar }

// CreateTable allocates blocks for a W×D table with the given match kind
// and wires it for use by the TSP at tspIndex. With a clustered crossbar
// the blocks come from that TSP's cluster.
func (m *Manager) CreateTable(name string, kind match.Kind, keyWidthBits, depth, tspIndex int) (*Table, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.tables[name]; ok {
		return nil, fmt.Errorf("mem: table %q already exists", name)
	}
	eng, err := match.New(kind, keyWidthBits, depth)
	if err != nil {
		return nil, err
	}
	cfg := m.pool.Config()
	n := BlocksForTable(keyWidthBits, depth, cfg.BlockWidth, cfg.BlockDepth)
	cluster := m.xbar.ClusterOfTSP(tspIndex)
	ids, err := m.pool.Allocate(name, n, cluster)
	if err != nil {
		return nil, fmt.Errorf("mem: placing table %q: %w", name, err)
	}
	t := &Table{Name: name, KeyWidth: keyWidthBits, Depth: depth, engine: eng, blocks: ids}
	m.tables[name] = t
	// Extend (not replace) the TSP's routes with the new table's blocks.
	routes := append(m.xbar.Routes(tspIndex), ids...)
	if err := m.xbar.Configure(tspIndex, routes); err != nil {
		_ = m.pool.Release(ids)
		delete(m.tables, name)
		return nil, err
	}
	return t, nil
}

// Table looks up a logical table by name.
func (m *Manager) Table(name string) (*Table, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.tables[name]
	return t, ok
}

// Tables lists table names.
func (m *Manager) Tables() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.tables))
	for n := range m.tables {
		out = append(out, n)
	}
	return out
}

// DropTable releases a table's blocks back to the pool.
func (m *Manager) DropTable(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.tables[name]
	if !ok {
		return fmt.Errorf("mem: table %q does not exist", name)
	}
	if err := m.pool.Release(t.blocks); err != nil {
		return err
	}
	delete(m.tables, name)
	return nil
}

// Migrate moves a table to the cluster reachable from newTSP, re-allocating
// blocks and copying entries — the expensive operation a clustered crossbar
// forces when a logical stage moves clusters (paper Sec. 2.4). It returns
// the number of entries moved. With a full crossbar no data motion is
// needed and Migrate only rewires.
func (m *Manager) Migrate(name string, newTSP int) (moved int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.tables[name]
	if !ok {
		return 0, fmt.Errorf("mem: table %q does not exist", name)
	}
	cluster := m.xbar.ClusterOfTSP(newTSP)
	if cluster < 0 {
		// Full crossbar: reachable from anywhere; just rewire.
		routes := append(m.xbar.Routes(newTSP), t.blocks...)
		return 0, m.xbar.Configure(newTSP, routes)
	}
	// Already in the right cluster?
	inPlace := true
	for _, b := range t.blocks {
		c, err := m.pool.ClusterOf(b)
		if err != nil {
			return 0, err
		}
		if c != cluster {
			inPlace = false
			break
		}
	}
	if inPlace {
		routes := append(m.xbar.Routes(newTSP), t.blocks...)
		return 0, m.xbar.Configure(newTSP, routes)
	}
	// Allocate destination blocks, copy entries, release the old blocks.
	newIDs, err := m.pool.Allocate(name, len(t.blocks), cluster)
	if err != nil {
		return 0, fmt.Errorf("mem: migrating table %q: %w", name, err)
	}
	newEng, err := match.New(t.engine.Kind(), t.KeyWidth, t.Depth)
	if err != nil {
		_ = m.pool.Release(newIDs)
		return 0, err
	}
	for _, e := range t.engine.Entries() {
		if _, err := newEng.Insert(e); err != nil {
			_ = m.pool.Release(newIDs)
			return moved, fmt.Errorf("mem: migrating table %q entry: %w", name, err)
		}
		moved++
	}
	old := t.blocks
	t.engine = newEng
	t.blocks = newIDs
	if err := m.pool.Release(old); err != nil {
		return moved, err
	}
	routes := append(m.xbar.Routes(newTSP), newIDs...)
	if err := m.xbar.Configure(newTSP, routes); err != nil {
		return moved, err
	}
	m.migratedEntries += moved
	return moved, nil
}

// MigratedEntries reports the cumulative number of entries moved by
// cross-cluster migrations.
func (m *Manager) MigratedEntries() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.migratedEntries
}
