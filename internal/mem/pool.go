package mem

import (
	"fmt"
	"sort"
	"sync"
)

// BlockID identifies one physical memory block in the pool.
type BlockID int

// Block describes one physical w×d memory block.
type Block struct {
	ID      BlockID
	Cluster int  // crossbar cluster the block belongs to
	InUse   bool // claimed by a logical table
	Owner   string
}

// Config sizes a memory pool.
type Config struct {
	Blocks     int // number of physical blocks
	BlockWidth int // w: bits per entry
	BlockDepth int // d: entries per block
	Clusters   int // number of crossbar clusters (1 = monolithic pool)
}

// DefaultConfig mirrors the scale of the paper's 8-processor FPGA
// prototype: a pool comfortably larger than the base design's needs.
func DefaultConfig() Config {
	return Config{Blocks: 64, BlockWidth: 128, BlockDepth: 4096, Clusters: 4}
}

func (c Config) validate() error {
	if c.Blocks <= 0 || c.BlockWidth <= 0 || c.BlockDepth <= 0 {
		return fmt.Errorf("mem: non-positive pool dimensions %+v", c)
	}
	if c.Clusters <= 0 || c.Clusters > c.Blocks {
		return fmt.Errorf("mem: cluster count %d invalid for %d blocks", c.Clusters, c.Blocks)
	}
	return nil
}

// BlocksForTable computes the number of blocks a W×D logical table needs in
// a pool with w×d blocks: ceil(W/w) * ceil(D/d) (paper Sec. 2.4).
func BlocksForTable(widthBits, depth, blockWidth, blockDepth int) int {
	wc := (widthBits + blockWidth - 1) / blockWidth
	dc := (depth + blockDepth - 1) / blockDepth
	return wc * dc
}

// Pool is the disaggregated memory pool.
type Pool struct {
	mu     sync.Mutex
	cfg    Config
	blocks []Block
	free   int
}

// NewPool builds a pool.
func NewPool(cfg Config) (*Pool, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := &Pool{cfg: cfg, free: cfg.Blocks}
	p.blocks = make([]Block, cfg.Blocks)
	per := (cfg.Blocks + cfg.Clusters - 1) / cfg.Clusters
	for i := range p.blocks {
		p.blocks[i] = Block{ID: BlockID(i), Cluster: i / per}
	}
	return p, nil
}

// Config returns the pool configuration.
func (p *Pool) Config() Config { return p.cfg }

// FreeBlocks reports the number of unclaimed blocks.
func (p *Pool) FreeBlocks() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.free
}

// FreeBlocksInCluster reports unclaimed blocks in one cluster.
func (p *Pool) FreeBlocksInCluster(cluster int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, b := range p.blocks {
		if !b.InUse && b.Cluster == cluster {
			n++
		}
	}
	return n
}

// Allocate claims n blocks for owner. If cluster >= 0 the blocks must all
// come from that cluster (the clustered-crossbar constraint); cluster < 0
// allows any blocks, preferring to pack clusters densely so large later
// requests still fit.
func (p *Pool) Allocate(owner string, n, cluster int) ([]BlockID, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mem: allocation of %d blocks invalid", n)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var candidates []int
	for i, b := range p.blocks {
		if b.InUse {
			continue
		}
		if cluster >= 0 && b.Cluster != cluster {
			continue
		}
		candidates = append(candidates, i)
	}
	if len(candidates) < n {
		where := "pool"
		if cluster >= 0 {
			where = fmt.Sprintf("cluster %d", cluster)
		}
		return nil, fmt.Errorf("mem: need %d blocks in %s, only %d free", n, where, len(candidates))
	}
	if cluster < 0 {
		// Prefer the fullest clusters first to keep whole clusters free.
		freeIn := make(map[int]int)
		for _, i := range candidates {
			freeIn[p.blocks[i].Cluster]++
		}
		sort.SliceStable(candidates, func(a, b int) bool {
			ca, cb := p.blocks[candidates[a]].Cluster, p.blocks[candidates[b]].Cluster
			if freeIn[ca] != freeIn[cb] {
				return freeIn[ca] < freeIn[cb]
			}
			return candidates[a] < candidates[b]
		})
	}
	ids := make([]BlockID, 0, n)
	for _, i := range candidates[:n] {
		p.blocks[i].InUse = true
		p.blocks[i].Owner = owner
		ids = append(ids, p.blocks[i].ID)
	}
	p.free -= n
	return ids, nil
}

// Release returns blocks to the pool (paper: "if a logical stage is
// deleted, the associated memory blocks are also recycled").
func (p *Pool) Release(ids []BlockID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, id := range ids {
		if int(id) < 0 || int(id) >= len(p.blocks) {
			return fmt.Errorf("mem: block %d out of range", id)
		}
		if !p.blocks[id].InUse {
			return fmt.Errorf("mem: block %d already free", id)
		}
	}
	for _, id := range ids {
		p.blocks[id].InUse = false
		p.blocks[id].Owner = ""
	}
	p.free += len(ids)
	return nil
}

// BlockInfo returns a copy of the block descriptor.
func (p *Pool) BlockInfo(id BlockID) (Block, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(id) < 0 || int(id) >= len(p.blocks) {
		return Block{}, fmt.Errorf("mem: block %d out of range", id)
	}
	return p.blocks[id], nil
}

// ClusterOf reports the cluster a block belongs to.
func (p *Pool) ClusterOf(id BlockID) (int, error) {
	b, err := p.BlockInfo(id)
	if err != nil {
		return 0, err
	}
	return b.Cluster, nil
}

// Utilization reports the fraction of blocks in use.
func (p *Pool) Utilization() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return float64(p.cfg.Blocks-p.free) / float64(p.cfg.Blocks)
}
