package mem

import (
	"fmt"
	"sync"
)

// CrossbarKind selects the interconnect topology between TSPs and memory
// blocks (paper Sec. 2.4: "different crossbar types can be used as a
// tradeoff between flexibility and resource consumption").
type CrossbarKind int

const (
	// FullCrossbar lets any TSP reach any block.
	FullCrossbar CrossbarKind = iota
	// ClusteredCrossbar lets a TSP in cluster i reach only blocks in
	// cluster i.
	ClusteredCrossbar
)

// String names the kind.
func (k CrossbarKind) String() string {
	switch k {
	case FullCrossbar:
		return "full"
	case ClusteredCrossbar:
		return "clustered"
	default:
		return fmt.Sprintf("CrossbarKind(%d)", int(k))
	}
}

// Crossbar tracks the static TSP↔block interconnect configuration. It is
// reconfigured (not per packet) whenever rp4bc changes a design.
type Crossbar struct {
	mu   sync.Mutex
	kind CrossbarKind
	pool *Pool
	// tsps maps TSP index -> crossbar cluster; for a full crossbar all
	// TSPs are cluster 0 conceptually but we keep the mapping for cost
	// accounting.
	tspCluster map[int]int
	// routes maps TSP index -> blocks it is wired to.
	routes map[int][]BlockID
	// Reconfigurations counts Configure calls, a proxy for update cost.
	reconfigs int
}

// NewCrossbar wires a crossbar of the given kind over the pool. tspCount
// TSPs are spread evenly over the pool's clusters for the clustered kind.
func NewCrossbar(kind CrossbarKind, pool *Pool, tspCount int) (*Crossbar, error) {
	if tspCount <= 0 {
		return nil, fmt.Errorf("mem: crossbar needs at least one TSP, got %d", tspCount)
	}
	cb := &Crossbar{
		kind:       kind,
		pool:       pool,
		tspCluster: make(map[int]int, tspCount),
		routes:     make(map[int][]BlockID),
	}
	clusters := pool.Config().Clusters
	per := (tspCount + clusters - 1) / clusters
	for i := 0; i < tspCount; i++ {
		if kind == ClusteredCrossbar {
			cb.tspCluster[i] = i / per
		} else {
			cb.tspCluster[i] = 0
		}
	}
	return cb, nil
}

// Kind reports the topology.
func (cb *Crossbar) Kind() CrossbarKind { return cb.kind }

// ClusterOfTSP reports which block cluster a TSP can reach (meaningful for
// the clustered kind; -1 means "all" for the full kind).
func (cb *Crossbar) ClusterOfTSP(tsp int) int {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	if cb.kind == FullCrossbar {
		return -1
	}
	return cb.tspCluster[tsp]
}

// Reachable reports whether a TSP may be wired to a block under the
// topology constraint.
func (cb *Crossbar) Reachable(tsp int, block BlockID) (bool, error) {
	bc, err := cb.pool.ClusterOf(block)
	if err != nil {
		return false, err
	}
	cb.mu.Lock()
	defer cb.mu.Unlock()
	if cb.kind == FullCrossbar {
		return true, nil
	}
	tc, ok := cb.tspCluster[tsp]
	if !ok {
		return false, fmt.Errorf("mem: unknown TSP %d", tsp)
	}
	return tc == bc, nil
}

// Configure wires a TSP to a set of blocks, replacing its previous routes.
// Every block must be reachable under the topology.
func (cb *Crossbar) Configure(tsp int, blocks []BlockID) error {
	for _, b := range blocks {
		ok, err := cb.Reachable(tsp, b)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("mem: block %d unreachable from TSP %d over %s crossbar", b, tsp, cb.kind)
		}
	}
	cb.mu.Lock()
	defer cb.mu.Unlock()
	cb.routes[tsp] = append([]BlockID(nil), blocks...)
	cb.reconfigs++
	return nil
}

// Routes returns the blocks a TSP is wired to.
func (cb *Crossbar) Routes(tsp int) []BlockID {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	return append([]BlockID(nil), cb.routes[tsp]...)
}

// Unwire removes a TSP's routes (stage deletion).
func (cb *Crossbar) Unwire(tsp int) {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	delete(cb.routes, tsp)
	cb.reconfigs++
}

// Reconfigurations reports how many Configure/Unwire calls have occurred,
// an input to the hardware update-cost model.
func (cb *Crossbar) Reconfigurations() int {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	return cb.reconfigs
}
