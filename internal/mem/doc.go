// Package mem implements IPSA's disaggregated memory pool (paper Sec. 2.4).
//
// Physical memory is a pool of identical w×d blocks (w bits wide, d entries
// deep) instead of SRAM/TCAM prorated to pipeline stages as in PISA. A
// logical table of size W×D claims ceil(W/w) × ceil(D/d) blocks. A crossbar
// connects Templated Stage Processors to blocks; it can be full (any TSP
// reaches any block) or clustered (TSP cluster i only reaches block cluster
// i), trading flexibility for silicon cost as in dRMT. Moving a logical
// stage across clusters therefore forces a table migration, which this
// package implements and accounts for.
//
// Functional lookup behaviour is delegated to a match.Engine per logical
// table; this package owns placement, capacity, migration and the crossbar
// configuration that rp4bc emits.
package mem
