package mem

import (
	"strings"
	"testing"
	"testing/quick"

	"ipsa/internal/match"
)

func TestBlocksForTable(t *testing.T) {
	cases := []struct {
		w, d, bw, bd, want int
	}{
		{128, 4096, 128, 4096, 1},
		{129, 4096, 128, 4096, 2},
		{128, 4097, 128, 4096, 2},
		{256, 8192, 128, 4096, 4},
		{1, 1, 128, 4096, 1},
		{300, 10000, 128, 4096, 9}, // ceil(300/128)=3, ceil(10000/4096)=3
	}
	for _, c := range cases {
		if got := BlocksForTable(c.w, c.d, c.bw, c.bd); got != c.want {
			t.Errorf("BlocksForTable(%d,%d,%d,%d) = %d, want %d", c.w, c.d, c.bw, c.bd, got, c.want)
		}
	}
}

func TestBlocksForTableProperty(t *testing.T) {
	// The paper's formula: blocks cover the table and removing one row or
	// column of blocks would not.
	f := func(w16, d16, bw8, bd8 uint8) bool {
		W, D := int(w16)+1, int(d16)+1
		bw, bd := int(bw8)+1, int(bd8)+1
		n := BlocksForTable(W, D, bw, bd)
		wc := (W + bw - 1) / bw
		dc := (D + bd - 1) / bd
		if n != wc*dc {
			return false
		}
		return wc*bw >= W && dc*bd >= D && (wc-1)*bw < W && (dc-1)*bd < D
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolAllocateRelease(t *testing.T) {
	p, err := NewPool(Config{Blocks: 8, BlockWidth: 64, BlockDepth: 1024, Clusters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.FreeBlocks() != 8 {
		t.Fatalf("FreeBlocks = %d", p.FreeBlocks())
	}
	ids, err := p.Allocate("fib", 3, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || p.FreeBlocks() != 5 {
		t.Errorf("ids=%v free=%d", ids, p.FreeBlocks())
	}
	b, err := p.BlockInfo(ids[0])
	if err != nil || !b.InUse || b.Owner != "fib" {
		t.Errorf("block info %+v, %v", b, err)
	}
	if p.Utilization() != 3.0/8.0 {
		t.Errorf("utilization = %f", p.Utilization())
	}
	if err := p.Release(ids); err != nil {
		t.Fatal(err)
	}
	if p.FreeBlocks() != 8 {
		t.Errorf("free after release = %d", p.FreeBlocks())
	}
	if err := p.Release(ids); err == nil {
		t.Error("double release accepted")
	}
	if err := p.Release([]BlockID{99}); err == nil {
		t.Error("out-of-range release accepted")
	}
}

func TestPoolClusterConstraint(t *testing.T) {
	p, _ := NewPool(Config{Blocks: 8, BlockWidth: 64, BlockDepth: 1024, Clusters: 2})
	// Cluster 0 is blocks 0-3, cluster 1 blocks 4-7.
	ids, err := p.Allocate("a", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if c, _ := p.ClusterOf(id); c != 1 {
			t.Errorf("block %d in cluster %d, want 1", id, c)
		}
	}
	if _, err := p.Allocate("b", 1, 1); err == nil {
		t.Error("over-allocation in cluster 1 accepted")
	}
	if p.FreeBlocksInCluster(0) != 4 || p.FreeBlocksInCluster(1) != 0 {
		t.Errorf("cluster free counts %d/%d", p.FreeBlocksInCluster(0), p.FreeBlocksInCluster(1))
	}
	if _, err := p.Allocate("c", 0, -1); err == nil {
		t.Error("zero-block allocation accepted")
	}
}

func TestPoolPacksClusters(t *testing.T) {
	p, _ := NewPool(Config{Blocks: 8, BlockWidth: 64, BlockDepth: 1024, Clusters: 4})
	// Claim one block from cluster 0 so it's the fullest.
	if _, err := p.Allocate("seed", 1, 0); err != nil {
		t.Fatal(err)
	}
	// An unconstrained single-block allocation should finish cluster 0
	// rather than fragment a fresh cluster.
	ids, err := p.Allocate("next", 1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := p.ClusterOf(ids[0]); c != 0 {
		t.Errorf("allocation went to cluster %d, want 0 (densest)", c)
	}
}

func TestNewPoolValidation(t *testing.T) {
	bad := []Config{
		{Blocks: 0, BlockWidth: 1, BlockDepth: 1, Clusters: 1},
		{Blocks: 4, BlockWidth: 0, BlockDepth: 1, Clusters: 1},
		{Blocks: 4, BlockWidth: 1, BlockDepth: 1, Clusters: 0},
		{Blocks: 4, BlockWidth: 1, BlockDepth: 1, Clusters: 5},
	}
	for _, c := range bad {
		if _, err := NewPool(c); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
}

func TestCrossbarReachability(t *testing.T) {
	p, _ := NewPool(Config{Blocks: 8, BlockWidth: 64, BlockDepth: 1024, Clusters: 2})
	full, err := NewCrossbar(FullCrossbar, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	clustered, err := NewCrossbar(ClusteredCrossbar, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Full: everything reachable.
	for tsp := 0; tsp < 4; tsp++ {
		for b := BlockID(0); b < 8; b++ {
			ok, err := full.Reachable(tsp, b)
			if err != nil || !ok {
				t.Errorf("full crossbar: TSP %d block %d unreachable", tsp, b)
			}
		}
	}
	// Clustered: TSPs 0,1 -> cluster 0 (blocks 0-3); TSPs 2,3 -> cluster 1.
	ok, _ := clustered.Reachable(0, 0)
	if !ok {
		t.Error("TSP 0 cannot reach block 0")
	}
	ok, _ = clustered.Reachable(0, 7)
	if ok {
		t.Error("TSP 0 reaches block 7 across clusters")
	}
	ok, _ = clustered.Reachable(3, 7)
	if !ok {
		t.Error("TSP 3 cannot reach block 7")
	}
	if err := clustered.Configure(0, []BlockID{7}); err == nil {
		t.Error("cross-cluster Configure accepted")
	}
	if err := clustered.Configure(0, []BlockID{0, 1}); err != nil {
		t.Fatal(err)
	}
	if got := clustered.Routes(0); len(got) != 2 {
		t.Errorf("routes = %v", got)
	}
	clustered.Unwire(0)
	if got := clustered.Routes(0); len(got) != 0 {
		t.Errorf("routes after unwire = %v", got)
	}
	if clustered.Reconfigurations() != 2 {
		t.Errorf("reconfigs = %d", clustered.Reconfigurations())
	}
	if _, err := NewCrossbar(FullCrossbar, p, 0); err == nil {
		t.Error("zero TSPs accepted")
	}
	if FullCrossbar.String() != "full" || ClusteredCrossbar.String() != "clustered" {
		t.Error("kind strings wrong")
	}
}

func TestManagerCreateLookupDrop(t *testing.T) {
	m, err := NewManager(Config{Blocks: 16, BlockWidth: 128, BlockDepth: 1024, Clusters: 2}, FullCrossbar, 8)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := m.CreateTable("ipv4_lpm", match.LPM, 32, 2048, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 32 bits fits one block width; 2048 entries fit 2 depth-1024 blocks.
	if len(tbl.Blocks()) != 2 {
		t.Errorf("blocks = %v", tbl.Blocks())
	}
	if _, err := m.CreateTable("ipv4_lpm", match.LPM, 32, 10, 0); err == nil {
		t.Error("duplicate table accepted")
	}
	if _, err := tbl.Engine().Insert(match.Entry{Key: []byte{10, 0, 0, 0}, PrefixLen: 8, ActionID: 1}); err != nil {
		t.Fatal(err)
	}
	if r, ok := tbl.Lookup([]byte{10, 1, 1, 1}); !ok || r.ActionID != 1 {
		t.Errorf("lookup = %+v, %v", r, ok)
	}
	tbl.Lookup([]byte{99, 0, 0, 0})
	h, mi := tbl.Stats()
	if h != 1 || mi != 1 {
		t.Errorf("stats = %d/%d", h, mi)
	}
	free := m.Pool().FreeBlocks()
	if err := m.DropTable("ipv4_lpm"); err != nil {
		t.Fatal(err)
	}
	if m.Pool().FreeBlocks() != free+2 {
		t.Error("blocks not recycled on drop")
	}
	if err := m.DropTable("ipv4_lpm"); err == nil {
		t.Error("double drop accepted")
	}
	if _, ok := m.Table("ipv4_lpm"); ok {
		t.Error("dropped table still visible")
	}
}

func TestManagerClusteredPlacementAndMigration(t *testing.T) {
	// 2 clusters of 4 blocks; 4 TSPs, so TSPs 0,1 -> cluster 0.
	m, err := NewManager(Config{Blocks: 8, BlockWidth: 128, BlockDepth: 1024, Clusters: 2}, ClusteredCrossbar, 4)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := m.CreateTable("acl", match.Ternary, 64, 1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range tbl.Blocks() {
		if c, _ := m.Pool().ClusterOf(b); c != 0 {
			t.Errorf("block %d placed in cluster %d", b, c)
		}
	}
	key := make([]byte, 8)
	mask := make([]byte, 8)
	for i := range mask {
		mask[i] = 0xff
	}
	key[7] = 5
	if _, err := tbl.Engine().Insert(match.Entry{Key: key, Mask: mask, Priority: 1, ActionID: 42}); err != nil {
		t.Fatal(err)
	}
	// Migrate to TSP 3 (cluster 1): entries must move.
	moved, err := m.Migrate("acl", 3)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 1 {
		t.Errorf("moved = %d, want 1", moved)
	}
	tbl, _ = m.Table("acl")
	for _, b := range tbl.Blocks() {
		if c, _ := m.Pool().ClusterOf(b); c != 1 {
			t.Errorf("post-migration block %d in cluster %d", b, c)
		}
	}
	if r, ok := tbl.Lookup(key); !ok || r.ActionID != 42 {
		t.Errorf("entry lost in migration: %+v, %v", r, ok)
	}
	if m.MigratedEntries() != 1 {
		t.Errorf("MigratedEntries = %d", m.MigratedEntries())
	}
	// Migrating to a TSP in the same cluster is free.
	moved, err = m.Migrate("acl", 2)
	if err != nil || moved != 0 {
		t.Errorf("same-cluster migration moved %d, err %v", moved, err)
	}
	if _, err := m.Migrate("ghost", 0); err == nil {
		t.Error("migrating unknown table accepted")
	}
}

func TestManagerFullCrossbarMigrationIsRewireOnly(t *testing.T) {
	m, _ := NewManager(Config{Blocks: 8, BlockWidth: 128, BlockDepth: 1024, Clusters: 2}, FullCrossbar, 4)
	if _, err := m.CreateTable("t", match.Exact, 16, 100, 0); err != nil {
		t.Fatal(err)
	}
	moved, err := m.Migrate("t", 3)
	if err != nil || moved != 0 {
		t.Errorf("full-crossbar migration moved %d, err %v", moved, err)
	}
}

func TestManagerPoolExhaustion(t *testing.T) {
	m, _ := NewManager(Config{Blocks: 2, BlockWidth: 32, BlockDepth: 64, Clusters: 1}, FullCrossbar, 2)
	if _, err := m.CreateTable("big", match.Exact, 64, 128, 0); err == nil {
		t.Error("table larger than pool accepted")
	} else if !strings.Contains(err.Error(), "big") {
		t.Errorf("error lacks table name: %v", err)
	}
	if len(m.Tables()) != 0 {
		t.Error("failed table left registered")
	}
}
