// Package core is the in-situ programming engine, the paper's headline
// capability: loading and offloading on-demand protocols and functions on
// a running switch with near-zero service impact. It ties the compiler
// workspace (rp4bc), the design flows (rP4-native and P4-via-rp4fc) and a
// target device together, measures the compile/load split of every update
// (the t_C / t_L of Table 1), and keeps a configuration history for the
// "reliable failback" the paper's live-trial use case needs.
package core

import (
	"fmt"
	"time"

	"ipsa/internal/compiler/backend"
	"ipsa/internal/compiler/frontend"
	"ipsa/internal/ctrlplane"
	"ipsa/internal/p4"
	"ipsa/internal/rp4/parser"
	"ipsa/internal/template"
)

// Target is the device side of the control channel; satisfied by
// *ipbm.Switch in process and by *ctrlplane.Client over TCP.
type Target interface {
	ApplyConfig(cfg *template.Config) (*ctrlplane.ApplyStats, error)
	InsertEntry(req ctrlplane.EntryReq) (int, error)
	AddMember(req ctrlplane.MemberReq) error
}

// InsituReport is the outcome of one runtime update.
type InsituReport struct {
	Compiler *backend.UpdateReport
	Device   *ctrlplane.ApplyStats
	// CompileTime is t_C (rp4bc incremental compile); LoadTime is t_L
	// (device patch), the two columns of Table 1.
	CompileTime time.Duration
	LoadTime    time.Duration
}

// Controller drives one device.
type Controller struct {
	ws     *backend.Workspace
	target Target
	opts   backend.Options

	// api is present when the base design came through rp4fc.
	api *frontend.APISpec

	// history holds previously applied configurations, newest last.
	history []*template.Config
}

// NewController compiles an rP4 base design and installs it.
func NewController(name, rp4src string, opts backend.Options, target Target) (*Controller, error) {
	prog, err := parser.Parse(name, rp4src)
	if err != nil {
		return nil, err
	}
	ws, err := backend.NewWorkspace(prog, opts)
	if err != nil {
		return nil, err
	}
	c := &Controller{ws: ws, target: target, opts: opts}
	if err := c.install(ws.Current().Config); err != nil {
		return nil, err
	}
	return c, nil
}

// NewControllerFromP4 runs the paper's preferred base-design flow: P4
// source through rp4fc into rP4, then rp4bc, then installation. The
// generated table APIs are kept for the control plane.
func NewControllerFromP4(name, p4src string, opts backend.Options, target Target) (*Controller, error) {
	hlir, err := p4.Parse(name, p4src)
	if err != nil {
		return nil, err
	}
	prog, api, err := frontend.Transform(hlir)
	if err != nil {
		return nil, err
	}
	ws, err := backend.NewWorkspace(prog, opts)
	if err != nil {
		return nil, err
	}
	c := &Controller{ws: ws, target: target, opts: opts, api: api}
	if err := c.install(ws.Current().Config); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Controller) install(cfg *template.Config) error {
	if _, err := c.target.ApplyConfig(cfg); err != nil {
		return fmt.Errorf("core: installing configuration: %w", err)
	}
	c.history = append(c.history, cfg)
	return nil
}

// Workspace exposes the compiler workspace (for inspection and the
// rendered updated base design).
func (c *Controller) Workspace() *backend.Workspace { return c.ws }

// API returns the rp4fc-generated table API spec, nil for rP4-native
// designs.
func (c *Controller) API() *frontend.APISpec { return c.api }

// CurrentConfig returns the installed configuration.
func (c *Controller) CurrentConfig() *template.Config {
	if len(c.history) == 0 {
		return nil
	}
	return c.history[len(c.history)-1]
}

// ApplyUpdate executes an in-situ update script (load/unload/add_link/...)
// against the running device, timing the compile and load halves.
func (c *Controller) ApplyUpdate(script string, loader backend.Loader) (*InsituReport, error) {
	t0 := time.Now()
	rep, err := c.ws.ApplyScript(script, loader)
	if err != nil {
		return nil, fmt.Errorf("core: incremental compile: %w", err)
	}
	compileTime := time.Since(t0)
	t1 := time.Now()
	dev, err := c.target.ApplyConfig(rep.Config)
	if err != nil {
		return nil, fmt.Errorf("core: device patch: %w", err)
	}
	loadTime := time.Since(t1)
	c.history = append(c.history, rep.Config)
	return &InsituReport{
		Compiler:    rep,
		Device:      dev,
		CompileTime: compileTime,
		LoadTime:    loadTime,
	}, nil
}

// Rollback reverts the device to the previous configuration — the
// "reliable failback procedure" for live trials. The compiler workspace
// is not rewound (source history is the operator's concern); only the
// device configuration flips back.
func (c *Controller) Rollback() (*ctrlplane.ApplyStats, error) {
	if len(c.history) < 2 {
		return nil, fmt.Errorf("core: nothing to roll back to")
	}
	prev := c.history[len(c.history)-2]
	// A stored configuration may carry the patch manifest of the update
	// that produced it; it describes a different transition, so rollback
	// must take the diffing path.
	if prev.Patch != nil {
		cp := *prev
		cp.Patch = nil
		prev = &cp
	}
	st, err := c.target.ApplyConfig(prev)
	if err != nil {
		return nil, err
	}
	c.history = c.history[:len(c.history)-1]
	return st, nil
}

// Generations reports how many configurations have been applied.
func (c *Controller) Generations() int { return len(c.history) }

// InsertEntry forwards a table write to the device.
func (c *Controller) InsertEntry(req ctrlplane.EntryReq) (int, error) {
	return c.target.InsertEntry(req)
}

// AddMember forwards an ECMP member addition to the device.
func (c *Controller) AddMember(req ctrlplane.MemberReq) error {
	return c.target.AddMember(req)
}

// InsertByAction resolves an action name to its executor tag via the
// rp4fc-generated API spec and installs the entry; it is the "generated
// API" path the paper describes.
func (c *Controller) InsertByAction(table, action string, keys []ctrlplane.FieldValue, params []uint64) (int, error) {
	if c.api == nil {
		return 0, fmt.Errorf("core: no API spec; base design was not compiled from P4")
	}
	for _, t := range c.api.Tables {
		if t.Name != table {
			continue
		}
		for _, a := range t.Actions {
			if a.Name == action {
				if len(params) != len(a.Params) {
					return 0, fmt.Errorf("core: action %q takes %d parameters, got %d", action, len(a.Params), len(params))
				}
				return c.target.InsertEntry(ctrlplane.EntryReq{
					Table: table, Keys: keys, Tag: a.Tag, Params: params,
				})
			}
		}
		return 0, fmt.Errorf("core: table %q has no action %q", table, action)
	}
	return 0, fmt.Errorf("core: unknown table %q", table)
}
