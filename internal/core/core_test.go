package core

import (
	"os"
	"path/filepath"
	"testing"

	"ipsa/internal/compiler/backend"
	"ipsa/internal/ctrlplane"
	"ipsa/internal/ipbm"
	"ipsa/internal/pkt"
)

func readTestdata(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("../../testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func loader(t *testing.T) backend.Loader {
	t.Helper()
	return func(name string) (string, error) {
		b, err := os.ReadFile(filepath.Join("../../testdata", name))
		return string(b), err
	}
}

func opts() backend.Options {
	o := backend.DefaultOptions()
	o.NumTSPs = 16
	return o
}

func newSwitch(t *testing.T) *ipbm.Switch {
	t.Helper()
	sw, err := ipbm.New(ipbm.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

func TestControllerRP4Flow(t *testing.T) {
	sw := newSwitch(t)
	c, err := NewController("base_l2l3.rp4", readTestdata(t, "base_l2l3.rp4"), opts(), sw)
	if err != nil {
		t.Fatal(err)
	}
	if c.Generations() != 1 || c.CurrentConfig() == nil {
		t.Fatalf("generations = %d", c.Generations())
	}
	// ECMP update: both halves timed, device agrees with compiler.
	rep, err := c.ApplyUpdate(readTestdata(t, "ecmp.script"), loader(t))
	if err != nil {
		t.Fatal(err)
	}
	if rep.CompileTime <= 0 || rep.LoadTime <= 0 {
		t.Errorf("times: %v / %v", rep.CompileTime, rep.LoadTime)
	}
	if rep.Device.TSPsWritten != len(rep.Compiler.RewrittenTSPs) {
		t.Errorf("device wrote %d, compiler predicted %v", rep.Device.TSPsWritten, rep.Compiler.RewrittenTSPs)
	}
	if c.Generations() != 2 {
		t.Errorf("generations = %d", c.Generations())
	}
	// Failback: the ECMP trial is reverted; nexthop_tbl exists again.
	st, err := c.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if st.TablesCreated != 1 || st.TablesDropped != 2 {
		t.Errorf("rollback stats: %+v", st)
	}
	if _, ok := c.CurrentConfig().Tables["nexthop_tbl"]; !ok {
		t.Error("rollback lost nexthop_tbl")
	}
	if _, err := c.Rollback(); err == nil {
		t.Error("rollback past the base accepted")
	}
}

func TestControllerP4Flow(t *testing.T) {
	sw := newSwitch(t)
	c, err := NewControllerFromP4("base_l2l3.p4", readTestdata(t, "base_l2l3.p4"), opts(), sw)
	if err != nil {
		t.Fatal(err)
	}
	if c.API() == nil || len(c.API().Tables) != 10 {
		t.Fatalf("api: %+v", c.API())
	}
	// Populate through the generated API (action names, not tags).
	routerMAC := pkt.MAC{0x02, 0, 0, 0, 0, 0x01}
	nhMAC := pkt.MAC{0x02, 0, 0, 0, 0, 0x03}
	type row struct {
		table, action string
		keys          []ctrlplane.FieldValue
		params        []uint64
	}
	rows := []row{
		{"port_map_tbl", "set_iif", []ctrlplane.FieldValue{{Value: 1}}, []uint64{10}},
		{"bd_vrf_tbl", "set_bd_vrf", []ctrlplane.FieldValue{{Value: 10}}, []uint64{100, 1}},
		{"l2_l3_tbl", "set_l3", []ctrlplane.FieldValue{{Value: 100}, {Value: routerMAC.Uint64()}}, nil},
		{"ipv4_host", "set_nexthop", []ctrlplane.FieldValue{{Value: 1}, {Value: 0x0A000002}}, []uint64{7}},
		{"nexthop_tbl", "set_bd_dmac", []ctrlplane.FieldValue{{Value: 7}}, []uint64{200, nhMAC.Uint64()}},
		{"smac_tbl", "rewrite_l3", []ctrlplane.FieldValue{{Value: 200}}, []uint64{0x020000000004}},
		{"dmac_tbl", "set_port", []ctrlplane.FieldValue{{Value: 200}, {Value: nhMAC.Uint64()}}, []uint64{3}},
	}
	for _, r := range rows {
		if _, err := c.InsertByAction(r.table, r.action, r.keys, r.params); err != nil {
			t.Fatalf("%s/%s: %v", r.table, r.action, err)
		}
	}
	// The P4-derived design forwards the same traffic as the rP4 one.
	raw, err := pkt.Serialize(
		&pkt.Ethernet{Dst: routerMAC, Src: pkt.MAC{2, 0, 0, 0, 0, 9}, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoTCP, Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 0, 0, 2}},
		&pkt.TCP{SrcPort: 1, DstPort: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sw.ProcessPacket(raw, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Drop || p.OutPort != 3 {
		t.Fatalf("drop=%v out=%d", p.Drop, p.OutPort)
	}
	var ip pkt.IPv4
	_ = ip.Decode(p.Data[pkt.EthernetLen:])
	if ip.TTL != 63 {
		t.Errorf("ttl = %d", ip.TTL)
	}
	// API misuse errors.
	if _, err := c.InsertByAction("ghost", "x", nil, nil); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := c.InsertByAction("dmac_tbl", "ghost", nil, nil); err == nil {
		t.Error("unknown action accepted")
	}
	if _, err := c.InsertByAction("dmac_tbl", "set_port", nil, []uint64{1, 2}); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestControllerP4ThenInsituECMP(t *testing.T) {
	// The full paper workflow: P4 base design via rp4fc, then an rP4
	// in-situ update on top of the generated design. The ECMP script
	// references the generated stage names (<table>_stage).
	sw := newSwitch(t)
	c, err := NewControllerFromP4("base_l2l3.p4", readTestdata(t, "base_l2l3.p4"), opts(), sw)
	if err != nil {
		t.Fatal(err)
	}
	script := `
load ecmp.rp4 --func_name ecmp
add_link ipv4_lpm_stage ecmp_stage
add_link ipv6_lpm_stage ecmp_stage
del_link ipv6_lpm_stage nexthop_tbl_stage
add_link ecmp_stage smac_tbl_stage
del_link nexthop_tbl_stage smac_tbl_stage
`
	rep, err := c.ApplyUpdate(script, loader(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Compiler.AddedStages) != 1 || rep.Compiler.AddedStages[0] != "ecmp_stage" {
		t.Errorf("added: %v", rep.Compiler.AddedStages)
	}
	if len(rep.Compiler.RemovedStages) != 1 || rep.Compiler.RemovedStages[0] != "nexthop_tbl_stage" {
		t.Errorf("removed: %v", rep.Compiler.RemovedStages)
	}
	if err := c.AddMember(ctrlplane.MemberReq{
		Table: "ecmp_ipv4", Group: ctrlplane.FieldValue{Value: 7},
		Tag: 1, Params: []uint64{200, 0x020000000003},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestControllerBadSources(t *testing.T) {
	sw := newSwitch(t)
	if _, err := NewController("bad.rp4", "junk {", opts(), sw); err == nil {
		t.Error("bad rP4 accepted")
	}
	if _, err := NewControllerFromP4("bad.p4", "junk {", opts(), sw); err == nil {
		t.Error("bad P4 accepted")
	}
}
