package ctrlplane

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"
)

// Server is the Control Channel Module (CCM): it bridges the data plane
// with the controller for runtime configuration (paper Sec. 4.1). One
// goroutine per connection; requests on a connection are answered in
// order.
type Server struct {
	dev Device
	log *slog.Logger

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	shutdown bool
	wg       sync.WaitGroup
}

// NewServer wraps a device.
func NewServer(dev Device, logger *slog.Logger) *Server {
	if logger == nil {
		logger = slog.Default()
	}
	return &Server{dev: dev, log: logger, conns: make(map[net.Conn]struct{})}
}

// Listen starts accepting on addr ("127.0.0.1:0" for an ephemeral port)
// and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("ccm: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			down := s.shutdown
			s.mu.Unlock()
			if down || errors.Is(err, net.ErrClosed) {
				return
			}
			s.log.Warn("ccm accept", "err", err)
			continue
		}
		s.mu.Lock()
		if s.shutdown {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.log.Debug("ccm decode", "err", err)
			}
			return
		}
		resp := s.Handle(&req)
		if err := enc.Encode(resp); err != nil {
			s.log.Debug("ccm encode", "err", err)
			return
		}
	}
}

// Handle dispatches one request; exported so in-process callers (tests,
// benchmarks) can skip the socket.
func (s *Server) Handle(req *Request) *Response {
	fail := func(err error) *Response { return &Response{Error: err.Error()} }
	switch req.Op {
	case OpPing:
		return &Response{OK: true}
	case OpApplyConfig:
		if req.Config == nil {
			return fail(fmt.Errorf("ccm: apply_config without config"))
		}
		st, err := s.dev.ApplyConfig(req.Config)
		if err != nil {
			return fail(err)
		}
		return &Response{OK: true, Apply: st}
	case OpInsertEntry:
		if req.Entry == nil {
			return fail(fmt.Errorf("ccm: insert_entry without entry"))
		}
		h, err := s.dev.InsertEntry(*req.Entry)
		if err != nil {
			return fail(err)
		}
		return &Response{OK: true, Handle: h}
	case OpDeleteEntry:
		if err := s.dev.DeleteEntry(req.Table, req.Handle); err != nil {
			return fail(err)
		}
		return &Response{OK: true}
	case OpAddMember:
		if req.Member == nil {
			return fail(fmt.Errorf("ccm: add_member without member"))
		}
		if err := s.dev.AddMember(*req.Member); err != nil {
			return fail(err)
		}
		return &Response{OK: true}
	case OpListTables:
		return &Response{OK: true, Tables: s.dev.ListTables()}
	case OpTableStats:
		st, err := s.dev.TableStats(req.Table)
		if err != nil {
			return fail(err)
		}
		return &Response{OK: true, Stats: st}
	case OpReadRegister:
		v, err := s.dev.ReadRegister(req.Register, req.Index)
		if err != nil {
			return fail(err)
		}
		return &Response{OK: true, Value: v}
	case OpDeviceStats:
		return &Response{OK: true, Device: s.dev.Stats()}
	case OpMetricsDump:
		ts, ok := s.dev.(TelemetrySource)
		if !ok {
			return fail(fmt.Errorf("ccm: device has no telemetry"))
		}
		return &Response{OK: true, Metrics: ts.MetricsDump()}
	case OpTraceDump:
		ts, ok := s.dev.(TelemetrySource)
		if !ok {
			return fail(fmt.Errorf("ccm: device has no telemetry"))
		}
		return &Response{OK: true, Traces: ts.TraceDump(req.Max)}
	case OpIntEnable, OpIntDisable:
		is, ok := s.dev.(IntSource)
		if !ok {
			return fail(fmt.Errorf("ccm: device has no INT support"))
		}
		if err := is.SetInt(req.Op == OpIntEnable); err != nil {
			return fail(err)
		}
		return &Response{OK: true}
	case OpIntReport:
		is, ok := s.dev.(IntSource)
		if !ok {
			return fail(fmt.Errorf("ccm: device has no INT support"))
		}
		return &Response{OK: true, Reports: is.IntReport(req.Max)}
	case OpEventsDump:
		es, ok := s.dev.(EventSource)
		if !ok {
			return fail(fmt.Errorf("ccm: device has no event log"))
		}
		return &Response{OK: true, Events: es.EventsDump(req.Max)}
	case OpEditBegin, OpEditTSP, OpEditTable, OpEditCommit, OpEditAbort:
		es, ok := s.dev.(EditSource)
		if !ok {
			return fail(fmt.Errorf("ccm: device has no edit support"))
		}
		switch req.Op {
		case OpEditBegin:
			if err := es.EditBegin(); err != nil {
				return fail(err)
			}
		case OpEditTSP, OpEditTable:
			if req.Edit == nil {
				return fail(fmt.Errorf("ccm: %s without edit op", req.Op))
			}
			if err := es.EditApply(*req.Edit); err != nil {
				return fail(err)
			}
		case OpEditCommit:
			st, err := es.EditCommit()
			if err != nil {
				return fail(err)
			}
			return &Response{OK: true, Edit: st}
		case OpEditAbort:
			if err := es.EditAbort(); err != nil {
				return fail(err)
			}
		}
		return &Response{OK: true}
	case OpHealthQuery:
		hs, ok := s.dev.(HealthSource)
		if !ok {
			return fail(fmt.Errorf("ccm: device has no health layer"))
		}
		return &Response{OK: true, Health: hs.HealthQuery(time.Duration(req.WindowNanos))}
	case OpFlowDump, OpFlowRecords, OpHHDump:
		fs, ok := s.dev.(FlowSource)
		if !ok {
			return fail(fmt.Errorf("ccm: device has no flow accounting"))
		}
		switch req.Op {
		case OpFlowDump:
			return &Response{OK: true, Flows: fs.FlowDump(req.Max)}
		case OpFlowRecords:
			return &Response{OK: true, Flows: fs.FlowRecords(req.Max)}
		default:
			return &Response{OK: true, Hitters: fs.HHDump(req.Max)}
		}
	case OpDropDump:
		ds, ok := s.dev.(DropSource)
		if !ok {
			return fail(fmt.Errorf("ccm: device has no drop capture"))
		}
		return &Response{OK: true, Drops: ds.DropDump(req.Max)}
	}
	return fail(fmt.Errorf("ccm: unknown op %q", req.Op))
}

// Close stops the listener and all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.shutdown = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}
