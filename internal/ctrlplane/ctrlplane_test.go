package ctrlplane

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ipsa/internal/template"
)

func testTable() *template.Table {
	return &template.Table{
		Name: "t", Kind: "exact", KeyWidth: 48, Size: 16,
		Keys: []template.KeySel{
			{Name: "meta.a", Kind: "exact", Operand: template.Operand{Kind: template.OpdMeta, BitOff: 0, Width: 16}},
			{Name: "h.b", Kind: "exact", Operand: template.Operand{Kind: template.OpdHeader, BitOff: 0, Width: 32}},
		},
	}
}

func TestEncodeKey(t *testing.T) {
	tbl := testTable()
	key, err := EncodeKey(tbl, []FieldValue{{Value: 0x1234}, {Value: 0xAABBCCDD}})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x12, 0x34, 0xAA, 0xBB, 0xCC, 0xDD}
	if string(key) != string(want) {
		t.Errorf("key = %x, want %x", key, want)
	}
	if _, err := EncodeKey(tbl, []FieldValue{{Value: 1}}); err == nil {
		t.Error("wrong key count accepted")
	}
	// Wide field via bytes.
	wide := &template.Table{
		Name: "w", Kind: "exact", KeyWidth: 128, Size: 4,
		Keys: []template.KeySel{{Name: "x", Operand: template.Operand{Kind: template.OpdHeader, Width: 128}}},
	}
	if _, err := EncodeKey(wide, []FieldValue{{Value: 1}}); err == nil {
		t.Error("wide field without bytes accepted")
	}
	addr := make([]byte, 16)
	addr[15] = 9
	key, err = EncodeKey(wide, []FieldValue{{Bytes: addr}})
	if err != nil || key[15] != 9 {
		t.Errorf("wide key: %x, %v", key, err)
	}
	if _, err := EncodeKey(wide, []FieldValue{{Bytes: addr[:8]}}); err == nil {
		t.Error("short bytes accepted")
	}
}

func TestEncodeEntryKinds(t *testing.T) {
	// LPM.
	lpm := &template.Table{Name: "l", Kind: "lpm", KeyWidth: 32, Size: 4,
		Keys: []template.KeySel{{Name: "d", Kind: "lpm", Operand: template.Operand{Kind: template.OpdHeader, Width: 32}}}}
	e, err := EncodeEntry(lpm, EntryReq{Table: "l", Keys: []FieldValue{{Value: 0x0A000000}}, PrefixLen: 8, Tag: 1})
	if err != nil || e.PrefixLen != 8 || e.ActionID != 1 {
		t.Errorf("lpm entry: %+v, %v", e, err)
	}
	if _, err := EncodeEntry(lpm, EntryReq{Table: "l", Keys: []FieldValue{{Value: 1}}, PrefixLen: 40}); err == nil {
		t.Error("oversized prefix accepted")
	}
	// Ternary with partial masks.
	tern := &template.Table{Name: "t", Kind: "ternary", KeyWidth: 16, Size: 4,
		Keys: []template.KeySel{
			{Name: "a", Kind: "ternary", Operand: template.Operand{Kind: template.OpdMeta, Width: 8}},
			{Name: "b", Kind: "ternary", Operand: template.Operand{Kind: template.OpdMeta, BitOff: 8, Width: 8}},
		}}
	e, err = EncodeEntry(tern, EntryReq{Table: "t",
		Keys: []FieldValue{{Value: 0x12, Mask: &FieldMask{Value: 0xF0}}, {Value: 0x34}}, Priority: 3})
	if err != nil {
		t.Fatal(err)
	}
	if e.Mask[0] != 0xF0 || e.Mask[1] != 0xFF || e.Priority != 3 {
		t.Errorf("ternary entry: mask %x prio %d", e.Mask, e.Priority)
	}
	// Range.
	rng := &template.Table{Name: "r", Kind: "range", KeyWidth: 16, Size: 4,
		Keys: []template.KeySel{{Name: "p", Kind: "range", Operand: template.Operand{Kind: template.OpdMeta, Width: 16}}}}
	e, err = EncodeEntry(rng, EntryReq{Table: "r",
		Keys: []FieldValue{{Value: 80}}, High: []FieldValue{{Value: 90}}})
	if err != nil || e.High[1] != 90 {
		t.Errorf("range entry: %+v, %v", e, err)
	}
	if _, err := EncodeEntry(rng, EntryReq{Table: "r", Keys: []FieldValue{{Value: 80}}}); err == nil {
		t.Error("range without high accepted")
	}
	// Unknown kind.
	bad := &template.Table{Name: "x", Kind: "fuzzy", KeyWidth: 8, Size: 1,
		Keys: []template.KeySel{{Name: "k", Operand: template.Operand{Width: 8}}}}
	if _, err := EncodeEntry(bad, EntryReq{Table: "x", Keys: []FieldValue{{Value: 1}}}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestEncodeGroupKey(t *testing.T) {
	sel := &template.Table{Name: "s", Kind: "exact", KeyWidth: 64, Size: 4, IsSelector: true,
		Keys: []template.KeySel{
			{Name: "g", Kind: "hash", Operand: template.Operand{Kind: template.OpdMeta, Width: 32}},
			{Name: "h", Kind: "hash", Operand: template.Operand{Kind: template.OpdHeader, Width: 32}},
		}}
	g, err := EncodeGroupKey(sel, FieldValue{Value: 7})
	if err != nil || len(g) != 4 || g[3] != 7 {
		t.Errorf("group key: %x, %v", g, err)
	}
	plain := testTable()
	if _, err := EncodeGroupKey(plain, FieldValue{Value: 1}); err == nil {
		t.Error("non-selector accepted")
	}
}

// fakeDevice implements Device for protocol tests.
type fakeDevice struct {
	mu      sync.Mutex
	entries int
	members int
	applied int
	regs    map[string]uint64
}

func (d *fakeDevice) ApplyConfig(cfg *template.Config) (*ApplyStats, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.applied++
	return &ApplyStats{Full: d.applied == 1, TSPsWritten: len(cfg.Stages)}, nil
}

func (d *fakeDevice) InsertEntry(req EntryReq) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if req.Table == "" {
		return 0, errors.New("no table")
	}
	d.entries++
	return d.entries, nil
}

func (d *fakeDevice) DeleteEntry(table string, handle int) error {
	if handle <= 0 {
		return fmt.Errorf("bad handle %d", handle)
	}
	return nil
}

func (d *fakeDevice) AddMember(req MemberReq) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.members++
	return nil
}

func (d *fakeDevice) ListTables() []TableStatus {
	return []TableStatus{{Name: "t", Kind: "exact", Entries: d.entries}}
}

func (d *fakeDevice) TableStats(table string) (*TableStats, error) {
	if table != "t" {
		return nil, fmt.Errorf("unknown table %q", table)
	}
	return &TableStats{Hits: 5, Misses: 2}, nil
}

func (d *fakeDevice) ReadRegister(name string, index uint64) (uint64, error) {
	v, ok := d.regs[name]
	if !ok {
		return 0, fmt.Errorf("unknown register %q", name)
	}
	return v + index, nil
}

func (d *fakeDevice) Stats() *DeviceStats {
	return &DeviceStats{Processed: 100, ActiveTSPs: 7}
}

func TestClientServerRoundTrip(t *testing.T) {
	dev := &fakeDevice{regs: map[string]uint64{"r": 40}}
	srv := NewServer(dev, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	st, err := cl.ApplyConfig(&template.Config{})
	if err != nil || !st.Full {
		t.Fatalf("apply: %+v, %v", st, err)
	}
	h, err := cl.InsertEntry(EntryReq{Table: "t", Tag: 1})
	if err != nil || h != 1 {
		t.Fatalf("insert: %d, %v", h, err)
	}
	if _, err := cl.InsertEntry(EntryReq{}); err == nil {
		t.Error("device error not surfaced")
	}
	if err := cl.DeleteEntry("t", 1); err != nil {
		t.Fatal(err)
	}
	if err := cl.AddMember(MemberReq{Table: "t"}); err != nil {
		t.Fatal(err)
	}
	tables, err := cl.ListTables()
	if err != nil || len(tables) != 1 || tables[0].Entries != 1 {
		t.Fatalf("tables: %+v, %v", tables, err)
	}
	ts, err := cl.TableStats("t")
	if err != nil || ts.Hits != 5 {
		t.Fatalf("stats: %+v, %v", ts, err)
	}
	if _, err := cl.TableStats("ghost"); err == nil {
		t.Error("unknown table stats accepted")
	}
	v, err := cl.ReadRegister("r", 2)
	if err != nil || v != 42 {
		t.Fatalf("register: %d, %v", v, err)
	}
	ds, err := cl.Stats()
	if err != nil || ds.Processed != 100 || ds.ActiveTSPs != 7 {
		t.Fatalf("device stats: %+v, %v", ds, err)
	}
}

func TestServerHandlesConcurrentClients(t *testing.T) {
	dev := &fakeDevice{regs: map[string]uint64{}}
	srv := NewServer(dev, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Dial(addr, time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			for j := 0; j < 20; j++ {
				if _, err := cl.InsertEntry(EntryReq{Table: "t"}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if dev.entries != 160 {
		t.Errorf("entries = %d", dev.entries)
	}
}

func TestHandleUnknownAndMalformed(t *testing.T) {
	srv := NewServer(&fakeDevice{}, nil)
	if r := srv.Handle(&Request{Op: "bogus"}); r.OK {
		t.Error("bogus op succeeded")
	}
	if r := srv.Handle(&Request{Op: OpApplyConfig}); r.OK {
		t.Error("apply without config succeeded")
	}
	if r := srv.Handle(&Request{Op: OpInsertEntry}); r.OK {
		t.Error("insert without entry succeeded")
	}
	if r := srv.Handle(&Request{Op: OpAddMember}); r.OK {
		t.Error("member without body succeeded")
	}
}
