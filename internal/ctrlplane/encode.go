// Package ctrlplane implements the control side of IPSA: the table-entry
// encoding shared by controller and device (so inserted entries and
// data-plane lookups agree bit for bit), the JSON control-channel protocol
// the CCM speaks, and the client the controller CLI and examples use.
package ctrlplane

import (
	"fmt"

	"ipsa/internal/match"
	"ipsa/internal/pkt"
	"ipsa/internal/template"
)

// FieldValue carries one key component of a table entry.
type FieldValue struct {
	// Value holds fields up to 64 bits; Bytes overrides it for wider
	// fields (e.g. IPv6 addresses) and must then be exactly
	// ceil(width/8) bytes.
	Value uint64 `json:"value,omitempty"`
	Bytes []byte `json:"bytes,omitempty"`
	// Mask is the per-field ternary mask (same encoding rules as the
	// value; nil means exact/full mask).
	Mask *FieldMask `json:"mask,omitempty"`
}

// FieldMask is a ternary mask for one key field.
type FieldMask struct {
	Value uint64 `json:"value,omitempty"`
	Bytes []byte `json:"bytes,omitempty"`
}

// EntryReq asks the device to install one table entry.
type EntryReq struct {
	Table string       `json:"table"`
	Keys  []FieldValue `json:"keys"`
	// PrefixLen applies to LPM tables (bits of the single key).
	PrefixLen int `json:"prefix_len,omitempty"`
	// High applies to range tables: the inclusive upper bound fields.
	High []FieldValue `json:"high,omitempty"`
	// Priority orders ternary/range entries.
	Priority int `json:"priority,omitempty"`
	// Tag selects the executor arm (the per-stage action switch tag).
	Tag int `json:"tag"`
	// Params are the action data bound to the entry.
	Params []uint64 `json:"params,omitempty"`
}

// MemberReq adds one member to a selector (ECMP) group.
type MemberReq struct {
	Table string `json:"table"`
	// Group is the value of the table's first (group) key.
	Group FieldValue `json:"group"`
	// Tag and Params describe the member's action binding.
	Tag    int      `json:"tag"`
	Params []uint64 `json:"params,omitempty"`
}

// fieldBytes renders a FieldValue right-aligned into width bits.
func fieldBytes(fv FieldValue, width int) ([]byte, error) {
	n := (width + 7) / 8
	if fv.Bytes != nil {
		if len(fv.Bytes) != n {
			return nil, fmt.Errorf("ctrlplane: field of %d bytes, want %d for %d-bit field", len(fv.Bytes), n, width)
		}
		return fv.Bytes, nil
	}
	if width > 64 {
		return nil, fmt.Errorf("ctrlplane: %d-bit field needs explicit bytes", width)
	}
	out := make([]byte, n)
	v := fv.Value
	for i := n - 1; i >= 0; i-- {
		out[i] = byte(v)
		v >>= 8
	}
	return out, nil
}

func maskBytes(m *FieldMask, width int) ([]byte, error) {
	if m == nil {
		// Full mask.
		n := (width + 7) / 8
		out := make([]byte, n)
		for i := range out {
			out[i] = 0xff
		}
		// Clear pad bits beyond width.
		if width%8 != 0 {
			out[0] &= 0xff >> uint(8-width%8)
		}
		return out, nil
	}
	return fieldBytes(FieldValue{Value: m.Value, Bytes: m.Bytes}, width)
}

// EncodeKey concatenates key field values into the table's key layout —
// the same packing tsp.BuildKey uses on the data path.
func EncodeKey(t *template.Table, keys []FieldValue) ([]byte, error) {
	if len(keys) != len(t.Keys) {
		return nil, fmt.Errorf("ctrlplane: table %q takes %d key fields, got %d", t.Name, len(t.Keys), len(keys))
	}
	out := make([]byte, (t.KeyWidth+7)/8)
	bit := 0
	for i, ks := range t.Keys {
		raw, err := fieldBytes(keys[i], ks.Operand.Width)
		if err != nil {
			return nil, fmt.Errorf("ctrlplane: table %q key %q: %w", t.Name, ks.Name, err)
		}
		if err := pkt.SetBytes(out, bit, ks.Operand.Width, raw); err != nil {
			return nil, err
		}
		bit += ks.Operand.Width
	}
	return out, nil
}

// EncodeEntry translates an EntryReq into the engine-level entry for the
// table's match kind.
func EncodeEntry(t *template.Table, req EntryReq) (match.Entry, error) {
	e := match.Entry{ActionID: req.Tag, Params: req.Params, Priority: req.Priority}
	key, err := EncodeKey(t, req.Keys)
	if err != nil {
		return e, err
	}
	e.Key = key
	kind, err := match.ParseKind(t.Kind)
	if err != nil {
		return e, err
	}
	switch kind {
	case match.LPM:
		if req.PrefixLen < 0 || req.PrefixLen > t.KeyWidth {
			return e, fmt.Errorf("ctrlplane: prefix length %d out of range [0,%d]", req.PrefixLen, t.KeyWidth)
		}
		e.PrefixLen = req.PrefixLen
	case match.Ternary:
		mask := make([]byte, (t.KeyWidth+7)/8)
		bit := 0
		for i, ks := range t.Keys {
			var m *FieldMask
			if i < len(req.Keys) {
				m = req.Keys[i].Mask
			}
			raw, err := maskBytes(m, ks.Operand.Width)
			if err != nil {
				return e, err
			}
			if err := pkt.SetBytes(mask, bit, ks.Operand.Width, raw); err != nil {
				return e, err
			}
			bit += ks.Operand.Width
		}
		e.Mask = mask
	case match.Range:
		if len(req.High) != len(t.Keys) {
			return e, fmt.Errorf("ctrlplane: range entry needs %d high fields", len(t.Keys))
		}
		high, err := EncodeKey(t, req.High)
		if err != nil {
			return e, err
		}
		e.High = high
	}
	return e, nil
}

// EncodeGroupKey renders a selector table's group key (its first key
// field).
func EncodeGroupKey(t *template.Table, g FieldValue) ([]byte, error) {
	if !t.IsSelector || len(t.Keys) == 0 {
		return nil, fmt.Errorf("ctrlplane: table %q is not a selector", t.Name)
	}
	return fieldBytes(g, t.Keys[0].Operand.Width)
}
