package ctrlplane

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"ipsa/internal/flowstat"
	"ipsa/internal/health"
	"ipsa/internal/intmd"
	"ipsa/internal/telemetry"
	"ipsa/internal/template"
)

// Client is the controller's connection to a device CCM.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
}

// Dial connects to a device's control channel.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("ctrlplane: %w", err)
	}
	return &Client{conn: conn, dec: json.NewDecoder(conn), enc: json.NewEncoder(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends one request and waits for its response.
func (c *Client) Do(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("ctrlplane: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("ctrlplane: recv: %w", err)
	}
	if !resp.OK {
		return &resp, fmt.Errorf("ctrlplane: device error: %s", resp.Error)
	}
	return &resp, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.Do(&Request{Op: OpPing})
	return err
}

// ApplyConfig downloads a device configuration.
func (c *Client) ApplyConfig(cfg *template.Config) (*ApplyStats, error) {
	resp, err := c.Do(&Request{Op: OpApplyConfig, Config: cfg})
	if err != nil {
		return nil, err
	}
	return resp.Apply, nil
}

// InsertEntry installs a table entry and returns its handle.
func (c *Client) InsertEntry(e EntryReq) (int, error) {
	resp, err := c.Do(&Request{Op: OpInsertEntry, Entry: &e})
	if err != nil {
		return 0, err
	}
	return resp.Handle, nil
}

// DeleteEntry removes a table entry by handle.
func (c *Client) DeleteEntry(table string, handle int) error {
	_, err := c.Do(&Request{Op: OpDeleteEntry, Table: table, Handle: handle})
	return err
}

// AddMember adds an ECMP group member.
func (c *Client) AddMember(m MemberReq) error {
	_, err := c.Do(&Request{Op: OpAddMember, Member: &m})
	return err
}

// ListTables lists installed tables.
func (c *Client) ListTables() ([]TableStatus, error) {
	resp, err := c.Do(&Request{Op: OpListTables})
	if err != nil {
		return nil, err
	}
	return resp.Tables, nil
}

// TableStats reads a table's counters.
func (c *Client) TableStats(table string) (*TableStats, error) {
	resp, err := c.Do(&Request{Op: OpTableStats, Table: table})
	if err != nil {
		return nil, err
	}
	return resp.Stats, nil
}

// ReadRegister reads one register cell.
func (c *Client) ReadRegister(name string, index uint64) (uint64, error) {
	resp, err := c.Do(&Request{Op: OpReadRegister, Register: name, Index: index})
	if err != nil {
		return 0, err
	}
	return resp.Value, nil
}

// Stats snapshots device counters.
func (c *Client) Stats() (*DeviceStats, error) {
	resp, err := c.Do(&Request{Op: OpDeviceStats})
	if err != nil {
		return nil, err
	}
	return resp.Device, nil
}

// MetricsDump fetches every metric series the device exports.
func (c *Client) MetricsDump() ([]telemetry.MetricPoint, error) {
	resp, err := c.Do(&Request{Op: OpMetricsDump})
	if err != nil {
		return nil, err
	}
	return resp.Metrics, nil
}

// TraceDump fetches up to max buffered packet flight records, newest
// first (max <= 0 returns all).
func (c *Client) TraceDump(max int) ([]telemetry.TraceRecord, error) {
	resp, err := c.Do(&Request{Op: OpTraceDump, Max: max})
	if err != nil {
		return nil, err
	}
	return resp.Traces, nil
}

// IntEnable turns on in-band telemetry stamping on the device.
func (c *Client) IntEnable() error {
	_, err := c.Do(&Request{Op: OpIntEnable})
	return err
}

// IntDisable turns off in-band telemetry stamping.
func (c *Client) IntDisable() error {
	_, err := c.Do(&Request{Op: OpIntDisable})
	return err
}

// IntReport fetches up to max sink-decoded INT reports, newest first
// (max <= 0 returns all buffered).
func (c *Client) IntReport(max int) ([]intmd.Report, error) {
	resp, err := c.Do(&Request{Op: OpIntReport, Max: max})
	if err != nil {
		return nil, err
	}
	return resp.Reports, nil
}

// HealthQuery fetches the device's self-diagnosis snapshot. window <= 0
// selects the device's default rate window.
func (c *Client) HealthQuery(window time.Duration) (*health.Status, error) {
	resp, err := c.Do(&Request{Op: OpHealthQuery, WindowNanos: window.Nanoseconds()})
	if err != nil {
		return nil, err
	}
	return resp.Health, nil
}

// FlowDump fetches up to max active flows, largest first (max <= 0
// selects the device default).
func (c *Client) FlowDump(max int) ([]flowstat.Record, error) {
	resp, err := c.Do(&Request{Op: OpFlowDump, Max: max})
	if err != nil {
		return nil, err
	}
	return resp.Flows, nil
}

// FlowRecords fetches up to max exported flow records (completed flows),
// oldest first (max <= 0 returns all buffered).
func (c *Client) FlowRecords(max int) ([]flowstat.Record, error) {
	resp, err := c.Do(&Request{Op: OpFlowRecords, Max: max})
	if err != nil {
		return nil, err
	}
	return resp.Flows, nil
}

// HHDump fetches up to max estimated heavy hitters, largest first
// (max <= 0 selects the device default).
func (c *Client) HHDump(max int) ([]flowstat.HeavyHitter, error) {
	resp, err := c.Do(&Request{Op: OpHHDump, Max: max})
	if err != nil {
		return nil, err
	}
	return resp.Hitters, nil
}

// DropDump fetches up to max sampled drop records, newest first
// (max <= 0 dumps the whole ring).
func (c *Client) DropDump(max int) ([]telemetry.DropRecord, error) {
	resp, err := c.Do(&Request{Op: OpDropDump, Max: max})
	if err != nil {
		return nil, err
	}
	return resp.Drops, nil
}

// EditBegin opens an edit-script transaction on the device.
func (c *Client) EditBegin() error {
	_, err := c.Do(&Request{Op: OpEditBegin})
	return err
}

// EditApply applies one edit op to the open transaction. Stage ops ride
// edit_tsp, table ops ride edit_table.
func (c *Client) EditApply(op EditOp) error {
	wire := OpEditTable
	if op.Kind == "set_stage" || op.Kind == "delete_stage" {
		wire = OpEditTSP
	}
	_, err := c.Do(&Request{Op: wire, Edit: &op})
	return err
}

// EditCommit publishes the open transaction as one reconfiguration.
func (c *Client) EditCommit() (*EditStats, error) {
	resp, err := c.Do(&Request{Op: OpEditCommit})
	if err != nil {
		return nil, err
	}
	return resp.Edit, nil
}

// EditAbort discards the open transaction.
func (c *Client) EditAbort() error {
	_, err := c.Do(&Request{Op: OpEditAbort})
	return err
}

// EventsDump fetches up to max reconfiguration audit events, newest
// first (max <= 0 returns all buffered).
func (c *Client) EventsDump(max int) ([]telemetry.Event, error) {
	resp, err := c.Do(&Request{Op: OpEventsDump, Max: max})
	if err != nil {
		return nil, err
	}
	return resp.Events, nil
}
