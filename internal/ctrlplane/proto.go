package ctrlplane

import (
	"encoding/json"
	"time"

	"ipsa/internal/flowstat"
	"ipsa/internal/health"
	"ipsa/internal/intmd"
	"ipsa/internal/telemetry"
	"ipsa/internal/template"
)

// The CCM protocol is newline-free JSON objects streamed over TCP: each
// Request gets exactly one Response, in order.

// Op names a control operation.
type Op string

// Control operations.
const (
	OpApplyConfig  Op = "apply_config"
	OpInsertEntry  Op = "insert_entry"
	OpDeleteEntry  Op = "delete_entry"
	OpAddMember    Op = "add_member"
	OpListTables   Op = "list_tables"
	OpTableStats   Op = "table_stats"
	OpReadRegister Op = "read_register"
	OpDeviceStats  Op = "device_stats"
	OpMetricsDump  Op = "metrics_dump"
	OpTraceDump    Op = "trace_dump"
	OpIntEnable    Op = "int_enable"
	OpIntDisable   Op = "int_disable"
	OpIntReport    Op = "int_report"
	OpEventsDump   Op = "events_dump"
	OpHealthQuery  Op = "health_query"
	OpFlowDump     Op = "flow_dump"
	OpFlowRecords  Op = "flow_records"
	OpHHDump       Op = "hh_dump"
	OpDropDump     Op = "drop_dump"
	OpPing         Op = "ping"

	// Edit-script ops: a begin/ops/commit transaction that inserts,
	// deletes or rewires individual TSP stages and tables instead of
	// shipping a whole configuration. Stage edits ride edit_tsp, table
	// edits ride edit_table; commit publishes the accumulated script as
	// one (hitless, on ipbm) reconfiguration.
	OpEditBegin  Op = "edit_begin"
	OpEditTSP    Op = "edit_tsp"
	OpEditTable  Op = "edit_table"
	OpEditCommit Op = "edit_commit"
	OpEditAbort  Op = "edit_abort"
)

// Request is one control-channel message.
type Request struct {
	Op Op `json:"op"`
	// Config serves apply_config.
	Config *template.Config `json:"config,omitempty"`
	// Entry serves insert_entry.
	Entry *EntryReq `json:"entry,omitempty"`
	// Member serves add_member.
	Member *MemberReq `json:"member,omitempty"`
	// Table/Handle serve delete_entry and table_stats.
	Table  string `json:"table,omitempty"`
	Handle int    `json:"handle,omitempty"`
	// Register/Index serve read_register.
	Register string `json:"register,omitempty"`
	Index    uint64 `json:"index,omitempty"`
	// Max bounds trace_dump (0 means all buffered records).
	Max int `json:"max,omitempty"`
	// WindowNanos overrides the rate window of health_query (0 uses the
	// device's default).
	WindowNanos int64 `json:"window_nanos,omitempty"`
	// Edit serves edit_tsp and edit_table.
	Edit *EditOp `json:"edit,omitempty"`
}

// Response answers a Request.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`

	Handle  int                     `json:"handle,omitempty"`
	Tables  []TableStatus           `json:"tables,omitempty"`
	Stats   *TableStats             `json:"stats,omitempty"`
	Value   uint64                  `json:"value,omitempty"`
	Device  *DeviceStats            `json:"device,omitempty"`
	Apply   *ApplyStats             `json:"apply,omitempty"`
	Metrics []telemetry.MetricPoint `json:"metrics,omitempty"`
	Traces  []telemetry.TraceRecord `json:"traces,omitempty"`
	Events  []telemetry.Event       `json:"events,omitempty"`
	Reports []intmd.Report          `json:"reports,omitempty"`
	Health  *health.Status          `json:"health,omitempty"`
	Edit    *EditStats              `json:"edit,omitempty"`
	Flows   []flowstat.Record       `json:"flows,omitempty"`
	Hitters []flowstat.HeavyHitter  `json:"hitters,omitempty"`
	Drops   []telemetry.DropRecord  `json:"drops,omitempty"`
	Extra   json.RawMessage         `json:"extra,omitempty"`
}

// TableStatus summarizes one installed logical table.
type TableStatus struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"`
	KeyWidth int    `json:"key_width"`
	Size     int    `json:"size"`
	Entries  int    `json:"entries"`
	Selector bool   `json:"selector,omitempty"`
}

// TableStats carries a table's hit/miss counters.
type TableStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// PortStats carries one port's packet counters in a device snapshot.
type PortStats struct {
	Port     int    `json:"port"`
	Sent     uint64 `json:"sent"`
	Received uint64 `json:"received"`
	RxDrops  uint64 `json:"rx_drops,omitempty"`
	TxDrops  uint64 `json:"tx_drops,omitempty"`
}

// DeviceStats snapshots the data plane's counters. Ports is optional so
// older devices (and their JSON) stay wire-compatible.
type DeviceStats struct {
	Processed       uint64      `json:"processed"`
	Dropped         uint64      `json:"dropped"`
	ToCPU           uint64      `json:"to_cpu"`
	ActiveTSPs      int         `json:"active_tsps"`
	StallNanos      int64       `json:"stall_nanos"`
	TemplateLoads   uint64      `json:"template_loads"`
	InvalidAccesses uint64      `json:"invalid_accesses"`
	Ports           []PortStats `json:"ports,omitempty"`
}

// ApplyStats reports what a configuration download changed, the numbers
// behind the loading-time comparison of Table 1.
type ApplyStats struct {
	TSPsWritten     int   `json:"tsps_written"`
	TablesCreated   int   `json:"tables_created"`
	TablesDropped   int   `json:"tables_dropped"`
	SelectorMoved   bool  `json:"selector_moved"`
	EntriesMigrated int   `json:"entries_migrated"`
	LoadNanos       int64 `json:"load_nanos"`
	Full            bool  `json:"full"` // full install vs incremental patch

	// Hitless-apply fields: set when the device published the new program
	// as an epoch in its versioned store instead of draining. Epoch is the
	// published version id; StagesRecompiled/StagesReused split the stage
	// set by whether structural hashing let the compiler reuse the
	// previous epoch's compiled stage.
	Hitless          bool   `json:"hitless,omitempty"`
	Epoch            uint64 `json:"epoch,omitempty"`
	StagesRecompiled int    `json:"stages_recompiled,omitempty"`
	StagesReused     int    `json:"stages_reused,omitempty"`
}

// EditOp is one step of an edit script. Kind selects the mutation:
//
//	set_stage    — create or replace stage Stage with Spec, merging any
//	               Actions it needs; a new stage is wired into the
//	               ingress (Egress=false) or egress chain at Position
//	               (append when Position < 0) and assigned to TSP.
//	delete_stage — remove stage Stage from the config, its chain and
//	               its TSP assignment.
//	set_table    — create or replace table Table with TableSpec.
//	delete_table — drop table Table (stages referencing it must be
//	               rewritten or deleted in the same script, or commit
//	               fails validation).
type EditOp struct {
	Kind      string                      `json:"kind"`
	Stage     string                      `json:"stage,omitempty"`
	Spec      *template.Stage             `json:"spec,omitempty"`
	Actions   map[string]*template.Action `json:"actions,omitempty"`
	TSP       int                         `json:"tsp,omitempty"`
	Egress    bool                        `json:"egress,omitempty"`
	Position  int                         `json:"position,omitempty"`
	Table     string                      `json:"table,omitempty"`
	TableSpec *template.Table             `json:"table_spec,omitempty"`
}

// EditStats summarizes a committed edit script.
type EditStats struct {
	Ops   int         `json:"ops"`
	Apply *ApplyStats `json:"apply,omitempty"`
}

// EditSource is optionally implemented by devices that support
// edit-script partial reconfiguration (begin/ops/commit transactions).
type EditSource interface {
	EditBegin() error
	EditApply(op EditOp) error
	EditCommit() (*EditStats, error)
	EditAbort() error
}

// Device is the behaviour a control server exposes; ipbm implements it.
type Device interface {
	ApplyConfig(cfg *template.Config) (*ApplyStats, error)
	InsertEntry(req EntryReq) (handle int, err error)
	DeleteEntry(table string, handle int) error
	AddMember(req MemberReq) error
	ListTables() []TableStatus
	TableStats(table string) (*TableStats, error)
	ReadRegister(name string, index uint64) (uint64, error)
	Stats() *DeviceStats
}

// TelemetrySource is optionally implemented by devices with an
// observability subsystem; the CCM probes for it so plain Devices keep
// working unchanged.
type TelemetrySource interface {
	MetricsDump() []telemetry.MetricPoint
	TraceDump(max int) []telemetry.TraceRecord
}

// IntSource is optionally implemented by devices whose data plane can
// stamp and sink INT metadata; the CCM probes for it like
// TelemetrySource.
type IntSource interface {
	SetInt(enabled bool) error
	IntReport(max int) []intmd.Report
}

// EventSource is optionally implemented by devices that keep a
// reconfiguration audit trail.
type EventSource interface {
	EventsDump(max int) []telemetry.Event
}

// HealthSource is optionally implemented by devices with a health layer;
// window <= 0 selects the device's default rate window.
type HealthSource interface {
	HealthQuery(window time.Duration) *health.Status
}

// FlowSource is optionally implemented by devices with flow-level
// accounting: active-flow dumps, the exported flow-record stream and
// heavy-hitter estimates. max <= 0 selects the device's default bound.
type FlowSource interface {
	FlowDump(max int) []flowstat.Record
	FlowRecords(max int) []flowstat.Record
	HHDump(max int) []flowstat.HeavyHitter
}

// DropSource is optionally implemented by devices with a sampled
// drop-capture ring (dropwatch-style loss forensics); max <= 0 dumps the
// whole ring, newest first.
type DropSource interface {
	DropDump(max int) []telemetry.DropRecord
}
