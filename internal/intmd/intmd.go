// Package intmd defines the in-band network telemetry (INT-MD) metadata
// format this switch stamps into packets, plus the encode/decode helpers
// shared by the stamper (internal/tsp), the sinks (internal/ipbm,
// internal/pisa) and the offline tooling (internal/netio, trafficgen).
//
// The telemetry rides as a trailer appended after the packet payload so
// that stamping never shifts parsed headers:
//
//	[ original frame ][ hop record 0 ]...[ hop record n-1 ][ shim ]
//
// The 8-byte shim sits at the very end of the frame, where a sink (or an
// offline decoder) can detect it without parsing the packet. Hop records
// are stamped oldest-first; each new hop is inserted just before the
// shim. Records are big-endian.
//
// The trailer is switch-internal metadata in the style of an Ethernet
// trailer: L3 length fields are not updated, and an INT sink strips the
// trailer before the frame leaves the switch.
package intmd

import (
	"encoding/binary"
	"fmt"
	"time"
)

// Wire-format constants.
const (
	// Magic marks an INT shim ("rINT" in ASCII).
	Magic = 0x72494E54
	// Version is the only trailer version this repository speaks.
	Version = 1
	// ShimLen is the shim's size: magic(4) version(1) hops(1) reserved(2).
	ShimLen = 8
	// HopLen is one hop record's size:
	// switch_id(4) tsp(2) stage_id(2) in_ts(8) out_ts(8) latency(4) qdepth(4).
	HopLen = 32
	// MaxHopsWire bounds the hop count representable in the shim's byte.
	MaxHopsWire = 255
)

// HopRecord is one stamped hop: which processor touched the packet and
// the timestamps/queue state it observed. InNanos/OutNanos are monotonic
// switch-local nanoseconds (see NowNanos); LatencyNanos = OutNanos -
// InNanos saturated to 32 bits.
type HopRecord struct {
	SwitchID     uint32 `json:"switch_id"`
	TSP          uint16 `json:"tsp"`
	StageID      uint16 `json:"stage_id"`
	Stage        string `json:"stage,omitempty"` // resolved by the sink, not on the wire
	InNanos      uint64 `json:"in_nanos"`
	OutNanos     uint64 `json:"out_nanos"`
	LatencyNanos uint32 `json:"latency_nanos"`
	QDepth       uint32 `json:"qdepth"`
}

// Report is one sink-decoded packet's telemetry: the hop sequence plus
// where the packet entered and left the sink switch.
type Report struct {
	Seq     uint64      `json:"seq"`
	InPort  int         `json:"in_port"`
	OutPort int         `json:"out_port"`
	Bytes   int         `json:"bytes"` // payload bytes after the trailer strip
	Hops    []HopRecord `json:"hops"`
}

// Path renders the hop sequence as "name>name>..." (stage IDs when a hop
// has no resolved name), the key of the sink's flow-path counters.
func (r *Report) Path() string {
	out := make([]byte, 0, 8*len(r.Hops))
	for i, h := range r.Hops {
		if i > 0 {
			out = append(out, '>')
		}
		if h.Stage != "" {
			out = append(out, h.Stage...)
		} else {
			out = appendUint(out, uint64(h.StageID))
		}
	}
	return string(out)
}

func appendUint(b []byte, v uint64) []byte {
	if v >= 10 {
		b = appendUint(b, v/10)
	}
	return append(b, byte('0'+v%10))
}

var epoch = time.Now()

// NowNanos is the stamper's default clock: monotonic nanoseconds since
// process start. Monotonic (not wall) time so hop-latency deltas are
// immune to clock steps; allocation-free.
func NowNanos() int64 { return int64(time.Since(epoch)) }

// Hops reports whether data carries an INT trailer and, if so, how many
// hop records it holds. It validates the shim and that the frame is long
// enough to hold the claimed records.
func Hops(data []byte) (int, bool) {
	n := len(data)
	if n < ShimLen {
		return 0, false
	}
	shim := data[n-ShimLen:]
	if binary.BigEndian.Uint32(shim[0:4]) != Magic || shim[4] != Version {
		return 0, false
	}
	hops := int(shim[5])
	if n < ShimLen+hops*HopLen {
		return 0, false
	}
	return hops, true
}

// TrailerLen returns the total trailer size of data (0 when none).
func TrailerLen(data []byte) int {
	hops, ok := Hops(data)
	if !ok {
		return 0
	}
	return ShimLen + hops*HopLen
}

// LastHopOut returns the newest hop record's OutNanos, for in-band
// latency chaining (the next hop's InNanos). ok is false when data has
// no trailer or no hops yet.
func LastHopOut(data []byte) (uint64, bool) {
	hops, ok := Hops(data)
	if !ok || hops == 0 {
		return 0, false
	}
	rec := data[len(data)-ShimLen-HopLen:]
	return binary.BigEndian.Uint64(rec[16:24]), true
}

func putHop(dst []byte, h HopRecord) {
	binary.BigEndian.PutUint32(dst[0:4], h.SwitchID)
	binary.BigEndian.PutUint16(dst[4:6], h.TSP)
	binary.BigEndian.PutUint16(dst[6:8], h.StageID)
	binary.BigEndian.PutUint64(dst[8:16], h.InNanos)
	binary.BigEndian.PutUint64(dst[16:24], h.OutNanos)
	binary.BigEndian.PutUint32(dst[24:28], h.LatencyNanos)
	binary.BigEndian.PutUint32(dst[28:32], h.QDepth)
}

func parseHop(src []byte) HopRecord {
	return HopRecord{
		SwitchID:     binary.BigEndian.Uint32(src[0:4]),
		TSP:          binary.BigEndian.Uint16(src[4:6]),
		StageID:      binary.BigEndian.Uint16(src[6:8]),
		InNanos:      binary.BigEndian.Uint64(src[8:16]),
		OutNanos:     binary.BigEndian.Uint64(src[16:24]),
		LatencyNanos: binary.BigEndian.Uint32(src[24:28]),
		QDepth:       binary.BigEndian.Uint32(src[28:32]),
	}
}

// AppendHop stamps one hop record onto data, creating the shim on the
// first stamp and inserting subsequent records just before it. The
// (possibly reallocated) frame is returned. Frames already at
// MaxHopsWire are returned unchanged.
func AppendHop(data []byte, h HopRecord) []byte {
	hops, ok := Hops(data)
	if !ok {
		// First stamp: append record + fresh shim.
		off := len(data)
		data = append(data, make([]byte, HopLen+ShimLen)...)
		putHop(data[off:], h)
		shim := data[off+HopLen:]
		binary.BigEndian.PutUint32(shim[0:4], Magic)
		shim[4] = Version
		shim[5] = 1
		return data
	}
	if hops >= MaxHopsWire {
		return data
	}
	// Grow by one record; the old shim bytes slide to the new end and the
	// record lands where the shim was.
	off := len(data) - ShimLen
	data = append(data, make([]byte, HopLen)...)
	copy(data[off+HopLen:], data[off:off+ShimLen])
	putHop(data[off:], h)
	data[len(data)-ShimLen+5] = byte(hops + 1)
	return data
}

// Parse decodes data's INT trailer without modifying it. ok is false
// when data carries no trailer.
func Parse(data []byte) (hops []HopRecord, payloadLen int, ok bool) {
	n, has := Hops(data)
	if !has {
		return nil, len(data), false
	}
	payloadLen = len(data) - ShimLen - n*HopLen
	hops = make([]HopRecord, n)
	for i := 0; i < n; i++ {
		hops[i] = parseHop(data[payloadLen+i*HopLen:])
	}
	return hops, payloadLen, true
}

// Strip removes the trailer from data, returning the truncated frame and
// the decoded hops. An error is returned when data has no trailer.
func Strip(data []byte) ([]byte, []HopRecord, error) {
	hops, payloadLen, ok := Parse(data)
	if !ok {
		return data, nil, fmt.Errorf("intmd: no INT trailer")
	}
	return data[:payloadLen], hops, nil
}

// SatLatency computes OutNanos-InNanos saturated into the 32-bit wire
// field (negative deltas, which a broken clock could produce, clamp to 0).
func SatLatency(inNanos, outNanos uint64) uint32 {
	if outNanos <= inNanos {
		return 0
	}
	d := outNanos - inNanos
	if d > 0xFFFFFFFF {
		return 0xFFFFFFFF
	}
	return uint32(d)
}
