package intmd

import (
	"bytes"
	"testing"
)

func TestAppendParseStrip(t *testing.T) {
	payload := []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04, 0x05}
	data := append([]byte(nil), payload...)

	if _, ok := Hops(data); ok {
		t.Fatalf("plain payload detected as INT")
	}
	if TrailerLen(data) != 0 {
		t.Fatalf("TrailerLen on plain payload = %d", TrailerLen(data))
	}

	recs := []HopRecord{
		{SwitchID: 7, TSP: 0, StageID: 100, InNanos: 1000, OutNanos: 1200, LatencyNanos: 200, QDepth: 3},
		{SwitchID: 7, TSP: 1, StageID: 200, InNanos: 1200, OutNanos: 1500, LatencyNanos: 300, QDepth: 0},
		{SwitchID: 7, TSP: 5, StageID: 300, InNanos: 1500, OutNanos: 1501, LatencyNanos: 1, QDepth: 9},
	}
	for i, r := range recs {
		data = AppendHop(data, r)
		if hops, ok := Hops(data); !ok || hops != i+1 {
			t.Fatalf("after stamp %d: hops=%d ok=%v", i, hops, ok)
		}
		out, ok := LastHopOut(data)
		if !ok || out != r.OutNanos {
			t.Fatalf("LastHopOut after stamp %d = %d,%v want %d", i, out, ok, r.OutNanos)
		}
	}
	if got, want := TrailerLen(data), ShimLen+3*HopLen; got != want {
		t.Fatalf("TrailerLen = %d want %d", got, want)
	}

	hops, payloadLen, ok := Parse(data)
	if !ok || payloadLen != len(payload) || len(hops) != 3 {
		t.Fatalf("Parse: ok=%v payloadLen=%d hops=%d", ok, payloadLen, len(hops))
	}
	for i := range recs {
		if hops[i] != recs[i] {
			t.Fatalf("hop %d round-trip mismatch: got %+v want %+v", i, hops[i], recs[i])
		}
	}

	stripped, hops2, err := Strip(append([]byte(nil), data...))
	if err != nil {
		t.Fatalf("Strip: %v", err)
	}
	if !bytes.Equal(stripped, payload) {
		t.Fatalf("Strip payload mismatch: %x vs %x", stripped, payload)
	}
	if len(hops2) != 3 {
		t.Fatalf("Strip hops = %d", len(hops2))
	}

	if _, _, err := Strip(payload); err == nil {
		t.Fatalf("Strip on plain payload should error")
	}
}

func TestHopsRejectsTruncated(t *testing.T) {
	data := AppendHop([]byte{1, 2, 3}, HopRecord{SwitchID: 1})
	// Corrupt the hop count upward: the frame is too short to hold them.
	data[len(data)-ShimLen+5] = 9
	if _, ok := Hops(data); ok {
		t.Fatalf("truncated trailer accepted")
	}
}

func TestReportPath(t *testing.T) {
	r := Report{Hops: []HopRecord{
		{StageID: 10, Stage: "l2"},
		{StageID: 20},
		{StageID: 30, Stage: "fib"},
	}}
	if got, want := r.Path(), "l2>20>fib"; got != want {
		t.Fatalf("Path = %q want %q", got, want)
	}
}

func TestSatLatency(t *testing.T) {
	if SatLatency(10, 5) != 0 {
		t.Fatalf("negative delta should clamp to 0")
	}
	if SatLatency(0, 1<<40) != 0xFFFFFFFF {
		t.Fatalf("large delta should saturate")
	}
	if SatLatency(100, 350) != 250 {
		t.Fatalf("plain delta wrong")
	}
}

func TestNowNanosMonotone(t *testing.T) {
	a := NowNanos()
	b := NowNanos()
	if b < a {
		t.Fatalf("NowNanos went backwards: %d then %d", a, b)
	}
}
