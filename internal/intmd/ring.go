package intmd

import "sync"

// ReportRing retains the newest decoded INT reports for control-plane
// dumps (`rp4ctl int report`). Both switch models keep one at their sink.
type ReportRing struct {
	mu   sync.Mutex
	ring []Report
	pos  int
	full bool
	seq  uint64
}

// NewReportRing builds a ring retaining size reports (<=0 picks 256).
func NewReportRing(size int) *ReportRing {
	if size <= 0 {
		size = 256
	}
	return &ReportRing{ring: make([]Report, size)}
}

// Push stamps the report's sequence number and retains it, evicting the
// oldest once the ring is full.
func (r *ReportRing) Push(rep Report) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	rep.Seq = r.seq
	r.ring[r.pos] = rep
	r.pos = (r.pos + 1) % len(r.ring)
	if r.pos == 0 {
		r.full = true
	}
}

// Dump returns up to max retained reports, newest first (max <= 0
// returns all).
func (r *ReportRing) Dump(max int) []Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.pos
	if r.full {
		n = len(r.ring)
	}
	if max > 0 && max < n {
		n = max
	}
	out := make([]Report, 0, n)
	for i := 0; i < n; i++ {
		idx := (r.pos - 1 - i + len(r.ring)) % len(r.ring)
		out = append(out, r.ring[idx])
	}
	return out
}
