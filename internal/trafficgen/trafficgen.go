// Package trafficgen generates deterministic, flow-structured workloads
// for the benchmarks and examples: given a seed, the same packet sequence
// is produced on every run, so measurements are reproducible.
package trafficgen

import (
	"fmt"
	"math/rand"

	"ipsa/internal/intmd"
	"ipsa/internal/pkt"
)

// Profile selects what kind of traffic a generator emits.
type Profile int

// Traffic profiles.
const (
	// IPv4Routed: TCP flows to routed IPv4 destinations.
	IPv4Routed Profile = iota
	// IPv6Routed: TCP flows to routed IPv6 destinations.
	IPv6Routed
	// Mixed46: a v4/v6 mix (90/10, the calibration mix of the cycle
	// model).
	Mixed46
	// SRv6: IPv6 packets carrying an SRH with two segments.
	SRv6
	// L2Bridged: frames addressed to host MACs (no routing).
	L2Bridged
)

// Config parameterizes a generator.
type Config struct {
	Profile Profile
	// Flows is the number of distinct 5-tuples cycled through.
	Flows int
	// PayloadLen pads packets to exercise realistic sizes.
	PayloadLen int
	// RouterMAC is the L3 destination MAC; HostMAC the L2 one.
	RouterMAC, HostMAC, SrcMAC pkt.MAC
	// V4Base/**Net are the destination prefixes flows spread over.
	V4Base [4]byte
	V6Base [16]byte
	// SID is the outer destination of SRv6 packets (the local SID under
	// test); NextSegment fills the segment list.
	SID, NextSegment [16]byte
	Seed             int64
	// IntHops pre-stamps each packet with that many synthetic upstream
	// INT hop records (transit-mode traffic: the switch under test is not
	// the INT source). 0 emits plain packets.
	IntHops int
	// IntSwitchID identifies the synthetic upstream switch (default 100).
	IntSwitchID uint32
}

// DefaultConfig emits IPv4 routed traffic over 256 flows.
func DefaultConfig() Config {
	return Config{
		Profile:    IPv4Routed,
		Flows:      256,
		PayloadLen: 64,
		RouterMAC:  pkt.MAC{0x02, 0, 0, 0, 0, 0x01},
		HostMAC:    pkt.MAC{0x02, 0, 0, 0, 0, 0x02},
		SrcMAC:     pkt.MAC{0x02, 0, 0, 0, 0, 0xFE},
		V4Base:     [4]byte{10, 1, 0, 0},
		V6Base:     [16]byte{0x20, 0x01},
		Seed:       1,
	}
}

// Generator produces packets.
type Generator struct {
	cfg Config
	rng *rand.Rand
	n   int
	// flows caches the per-flow immutable parts.
	flows [][]byte
}

// New builds a generator, pre-rendering one packet per flow.
func New(cfg Config) (*Generator, error) {
	if cfg.Flows <= 0 {
		return nil, fmt.Errorf("trafficgen: need at least one flow, got %d", cfg.Flows)
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	for i := 0; i < cfg.Flows; i++ {
		raw, err := g.render(i)
		if err != nil {
			return nil, err
		}
		if cfg.IntHops > 0 {
			raw = g.stampUpstream(raw, i)
		}
		g.flows = append(g.flows, raw)
	}
	return g, nil
}

// stampUpstream appends cfg.IntHops synthetic transit hop records, as if
// an upstream switch had already stamped the packet. Deterministic: the
// fake clock advances 1µs per hop from a flow-derived base.
func (g *Generator) stampUpstream(raw []byte, flow int) []byte {
	swID := g.cfg.IntSwitchID
	if swID == 0 {
		swID = 100
	}
	base := uint64(flow+1) * 1000
	for h := 0; h < g.cfg.IntHops; h++ {
		in := base + uint64(h)*1000
		out := in + 500
		raw = intmd.AppendHop(raw, intmd.HopRecord{
			SwitchID:     swID,
			TSP:          uint16(h),
			StageID:      tspStageID(h),
			InNanos:      in,
			OutNanos:     out,
			LatencyNanos: uint32(out - in),
			QDepth:       uint32(flow % 8),
		})
	}
	return raw
}

// tspStageID gives synthetic upstream hops distinct, stable stage IDs
// outside the range a real config is likely to hash into.
func tspStageID(h int) uint16 { return uint16(0xF000 + h) }

func (g *Generator) render(flow int) ([]byte, error) {
	payload := make(pkt.Payload, g.cfg.PayloadLen)
	for i := range payload {
		payload[i] = byte(flow + i)
	}
	srcPort := uint16(1024 + flow%40000)
	dstPort := uint16(80 + flow%16)
	profile := g.cfg.Profile
	if profile == Mixed46 {
		if flow%10 == 9 {
			profile = IPv6Routed
		} else {
			profile = IPv4Routed
		}
	}
	switch profile {
	case IPv4Routed, L2Bridged:
		dmac := g.cfg.RouterMAC
		if profile == L2Bridged {
			dmac = g.cfg.HostMAC
		}
		dst := g.cfg.V4Base
		dst[2] = byte(flow >> 8)
		dst[3] = byte(flow)
		return pkt.Serialize(
			&pkt.Ethernet{Dst: dmac, Src: g.cfg.SrcMAC, EtherType: pkt.EtherTypeIPv4},
			&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoTCP, Src: [4]byte{10, 0, 0, 1}, Dst: dst},
			&pkt.TCP{SrcPort: srcPort, DstPort: dstPort},
			payload,
		)
	case IPv6Routed:
		ip := pkt.IPv6{NextHeader: pkt.IPProtoTCP, HopLimit: 64}
		ip.Dst = g.cfg.V6Base
		ip.Dst[14] = byte(flow >> 8)
		ip.Dst[15] = byte(flow)
		ip.Src[15] = 1
		return pkt.Serialize(
			&pkt.Ethernet{Dst: g.cfg.RouterMAC, Src: g.cfg.SrcMAC, EtherType: pkt.EtherTypeIPv6},
			&ip,
			&pkt.TCP{SrcPort: srcPort, DstPort: dstPort},
			payload,
		)
	case SRv6:
		ip := pkt.IPv6{NextHeader: pkt.IPProtoRouting, HopLimit: 64}
		ip.Dst = g.cfg.SID
		ip.Src[15] = byte(flow)
		seg0 := g.cfg.NextSegment
		seg0[13] = byte(flow)
		var seg1 [16]byte
		seg1[0], seg1[15] = 0xfd, 0xee
		srh := pkt.SRH{NextHeader: pkt.IPProtoTCP, SegmentsLeft: 1, Segments: [][16]byte{seg0, seg1}}
		return pkt.Serialize(
			&pkt.Ethernet{Dst: g.cfg.RouterMAC, Src: g.cfg.SrcMAC, EtherType: pkt.EtherTypeIPv6},
			&ip, &srh,
			&pkt.TCP{SrcPort: srcPort, DstPort: dstPort},
			payload,
		)
	}
	return nil, fmt.Errorf("trafficgen: unknown profile %d", profile)
}

// Next returns the next packet, cycling flows. The returned slice is a
// fresh copy, safe to mutate.
func (g *Generator) Next() []byte {
	raw := g.flows[g.n%len(g.flows)]
	g.n++
	out := make([]byte, len(raw))
	copy(out, raw)
	return out
}

// NextShared returns the next packet without copying; callers must not
// retain it across calls if they mutate it. For hot benchmark loops.
func (g *Generator) NextShared() []byte {
	raw := g.flows[g.n%len(g.flows)]
	g.n++
	return raw
}

// Count reports how many packets have been produced.
func (g *Generator) Count() int { return g.n }

// FlowPackets returns all pre-rendered flow packets (one per flow).
func (g *Generator) FlowPackets() [][]byte {
	out := make([][]byte, len(g.flows))
	for i, f := range g.flows {
		out[i] = append([]byte(nil), f...)
	}
	return out
}
