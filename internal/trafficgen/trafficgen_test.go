package trafficgen

import (
	"bytes"
	"testing"

	"ipsa/internal/intmd"
	"ipsa/internal/pkt"
)

func TestDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	g1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := New(cfg)
	for i := 0; i < 100; i++ {
		if !bytes.Equal(g1.Next(), g2.Next()) {
			t.Fatalf("divergence at packet %d", i)
		}
	}
	if g1.Count() != 100 {
		t.Errorf("count = %d", g1.Count())
	}
}

func TestProfilesDecode(t *testing.T) {
	for _, prof := range []Profile{IPv4Routed, IPv6Routed, Mixed46, SRv6, L2Bridged} {
		cfg := DefaultConfig()
		cfg.Profile = prof
		cfg.Flows = 20
		cfg.SID[0], cfg.SID[15] = 0x20, 0xAA
		cfg.NextSegment[0], cfg.NextSegment[15] = 0x20, 0xBB
		g, err := New(cfg)
		if err != nil {
			t.Fatalf("profile %d: %v", prof, err)
		}
		for i := 0; i < 20; i++ {
			raw := g.Next()
			var eth pkt.Ethernet
			if err := eth.Decode(raw); err != nil {
				t.Fatalf("profile %d packet %d: %v", prof, i, err)
			}
			switch prof {
			case IPv4Routed, L2Bridged:
				if eth.EtherType != pkt.EtherTypeIPv4 {
					t.Fatalf("profile %d: ethertype %#x", prof, eth.EtherType)
				}
				var ip pkt.IPv4
				if err := ip.Decode(raw[pkt.EthernetLen:]); err != nil {
					t.Fatal(err)
				}
				if !pkt.VerifyIPv4Checksum(raw[pkt.EthernetLen:]) {
					t.Fatal("bad v4 checksum")
				}
			case IPv6Routed:
				var ip pkt.IPv6
				if err := ip.Decode(raw[pkt.EthernetLen:]); err != nil {
					t.Fatal(err)
				}
			case SRv6:
				var ip pkt.IPv6
				if err := ip.Decode(raw[pkt.EthernetLen:]); err != nil {
					t.Fatal(err)
				}
				if ip.NextHeader != pkt.IPProtoRouting {
					t.Fatalf("srv6 next header %d", ip.NextHeader)
				}
				var srh pkt.SRH
				if err := srh.Decode(raw[pkt.EthernetLen+pkt.IPv6Len:]); err != nil {
					t.Fatal(err)
				}
				if len(srh.Segments) != 2 || srh.SegmentsLeft != 1 {
					t.Fatalf("srh: %+v", srh)
				}
			}
		}
	}
}

func TestFlowsCycleAndDiffer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Flows = 4
	g, _ := New(cfg)
	first := g.Next()
	second := g.Next()
	if bytes.Equal(first, second) {
		t.Error("distinct flows produced identical packets")
	}
	g.Next()
	g.Next()
	fifth := g.Next() // wraps to flow 0
	if !bytes.Equal(first, fifth) {
		t.Error("flow cycling broken")
	}
	// Mutating a returned packet must not corrupt the generator.
	first[0] = 0xFF
	again := g.Next()
	if again[0] == 0xFF {
		t.Error("Next returns shared storage")
	}
	// The five-tuples differ between flows.
	f1, ok1 := pkt.ExtractFiveTuple(g.FlowPackets()[0])
	f2, ok2 := pkt.ExtractFiveTuple(g.FlowPackets()[1])
	if !ok1 || !ok2 || f1 == f2 {
		t.Errorf("flow tuples: %+v vs %+v", f1, f2)
	}
}

func TestBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Flows = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero flows accepted")
	}
}

// TestIntHopsPreStamped checks transit-mode generation: packets leave
// the generator already carrying synthetic upstream INT hop records.
func TestIntHopsPreStamped(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IntHops = 2
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw := g.Next()
	hops, payloadLen, ok := intmd.Parse(raw)
	if !ok {
		t.Fatal("generated packet carries no INT trailer")
	}
	if len(hops) != 2 {
		t.Fatalf("hops = %d, want 2", len(hops))
	}
	if hops[0].SwitchID != 100 {
		t.Errorf("upstream switch ID = %d, want default 100", hops[0].SwitchID)
	}
	if payloadLen+2*intmd.HopLen+intmd.ShimLen != len(raw) {
		t.Errorf("trailer accounting: payload=%d total=%d", payloadLen, len(raw))
	}
	// Determinism holds with stamping on.
	g2, _ := New(cfg)
	if !bytes.Equal(raw, g2.Next()) {
		t.Error("INT-stamped generation is not deterministic")
	}
	// Plain generation stays trailer-free.
	cfg.IntHops = 0
	g3, _ := New(cfg)
	if _, _, ok := intmd.Parse(g3.Next()); ok {
		t.Error("plain packet parsed as INT-stamped")
	}
}
