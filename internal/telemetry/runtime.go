package telemetry

import (
	"runtime"
	"runtime/debug"
)

// RegisterRuntimeMetrics hangs a scrape-time collector of Go runtime
// health on the registry — goroutine count, heap occupancy and GC pause
// totals — plus a constant ipsa_build_info gauge whose labels identify
// the binary (the Prometheus build_info convention). Scrape-time only:
// ReadMemStats briefly stops the world, so nothing on a packet path ever
// calls this.
func RegisterRuntimeMetrics(r *Registry) {
	info := []Label{L("go_version", runtime.Version())}
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Path != "" {
		info = append(info, L("module", bi.Main.Path))
	}
	r.AddCollector(func(emit func(MetricPoint)) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		gauge := func(name string, v float64) {
			emit(MetricPoint{Name: name, Kind: "gauge", Value: v})
		}
		ctr := func(name string, v float64) {
			emit(MetricPoint{Name: name, Kind: "counter", Value: v})
		}
		emit(MetricPoint{Name: "ipsa_build_info", Kind: "gauge", Value: 1, Labels: info})
		gauge("ipsa_go_goroutines", float64(runtime.NumGoroutine()))
		gauge("ipsa_go_heap_alloc_bytes", float64(ms.HeapAlloc))
		gauge("ipsa_go_heap_objects", float64(ms.HeapObjects))
		gauge("ipsa_go_sys_bytes", float64(ms.Sys))
		ctr("ipsa_go_gc_cycles_total", float64(ms.NumGC))
		ctr("ipsa_go_gc_pause_seconds_total", float64(ms.PauseTotalNs)/1e9)
		if ms.NumGC > 0 {
			gauge("ipsa_go_gc_pause_last_seconds",
				float64(ms.PauseNs[(ms.NumGC+255)%256])/1e9)
		}
	})
}
