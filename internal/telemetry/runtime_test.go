package telemetry

import (
	"strings"
	"testing"
)

// TestRuntimeMetrics: the scrape-time runtime collector emits the Go
// health series and a labelled build-info gauge.
func TestRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	byName := map[string]MetricPoint{}
	for _, p := range r.Gather() {
		byName[p.Name] = p
	}
	for _, name := range []string{
		"ipsa_go_goroutines", "ipsa_go_heap_alloc_bytes", "ipsa_go_heap_objects",
		"ipsa_go_sys_bytes", "ipsa_go_gc_cycles_total", "ipsa_go_gc_pause_seconds_total",
	} {
		if _, ok := byName[name]; !ok {
			t.Errorf("series %s missing", name)
		}
	}
	if byName["ipsa_go_goroutines"].Value < 1 {
		t.Errorf("goroutines = %v", byName["ipsa_go_goroutines"].Value)
	}
	bi, ok := byName["ipsa_build_info"]
	if !ok || bi.Value != 1 {
		t.Fatalf("ipsa_build_info = %+v", bi)
	}
	var goVersion string
	for _, l := range bi.Labels {
		if l.Key == "go_version" {
			goVersion = l.Value
		}
	}
	if !strings.HasPrefix(goVersion, "go") {
		t.Errorf("build_info go_version = %q", goVersion)
	}
}
