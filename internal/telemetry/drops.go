package telemetry

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ipsa/internal/verdict"
)

// DropHdrBytes is how many leading frame bytes a drop record captures —
// enough for an Ethernet + IPv4/IPv6 + L4 header prefix, small enough
// that the ring slot stays fixed-size and capture never allocates.
const DropHdrBytes = 64

// DropRecord is one sampled dropped packet, the exported (Dump/CCM/HTTP)
// form of a ring slot.
type DropRecord struct {
	Seq    uint64 `json:"seq"`
	Nanos  int64  `json:"nanos"` // capture time, monotonic process clock
	Reason string `json:"reason"`
	// TSP is the dropping TSP index for acl drops; -1 when the drop point
	// is not a stage (TM admission, TX, the parser).
	TSP     int `json:"tsp"`
	InPort  int `json:"in_port"`
	OutPort int `json:"out_port"`
	// Epoch is the program-store epoch current at the drop (0 on
	// drain-mode switches), tying the loss to the program version that
	// caused it across hitless reconfigurations.
	Epoch uint64 `json:"epoch,omitempty"`
	Bytes int    `json:"bytes"`         // original frame length
	Hdr   []byte `json:"hdr,omitempty"` // first DropHdrBytes of the frame
}

// dropSlot is the fixed-size in-ring form. Capture copies into it under
// the ring mutex with no allocation; Dump (cold) expands slots into
// DropRecords.
type dropSlot struct {
	seq     uint64
	nanos   int64
	reason  verdict.DropReason
	tsp     int32
	inPort  int32
	outPort int32
	epoch   uint64
	size    int32
	hdrLen  int32
	hdr     [DropHdrBytes]byte
}

// The ring's monotonic clock (token refill + record timestamps).
var dropClockBase = time.Now()

func dropNanos() int64 { return int64(time.Since(dropClockBase)) }

// DropRing is the dropwatch-style loss flight recorder: a token-bucket-
// sampled subset of dropped packets has its first DropHdrBytes bytes,
// drop point and epoch copied into a fixed ring. The bucket bounds both
// the capture rate and the mutex pressure, so a drop storm (the moment
// the ring exists for) costs the unsampled majority one atomic
// load-and-fail on the bucket and nothing else.
type DropRing struct {
	rate   atomic.Int64 // sampled drops per second; <= 0 disables capture
	burst  int64        // bucket capacity
	tokens atomic.Int64
	last   atomic.Int64 // refill clock, dropNanos

	seq     atomic.Uint64
	sampled atomic.Uint64 // records captured
	skipped atomic.Uint64 // drops seen while the bucket was empty/disabled

	mu   sync.Mutex
	ring []dropSlot
	pos  int
	full bool
}

// NewDropRing builds a ring of size slots sampling at most rate drops
// per second with bursts up to burst (defaults: 256 slots, burst = rate).
func NewDropRing(size int, rate, burst int64) *DropRing {
	if size <= 0 {
		size = 256
	}
	if burst <= 0 {
		burst = rate
	}
	r := &DropRing{burst: burst, ring: make([]dropSlot, size)}
	r.rate.Store(rate)
	r.tokens.Store(burst)
	return r
}

// SetRate changes the sampling rate at runtime (<= 0 disables).
func (r *DropRing) SetRate(n int64) { r.rate.Store(n) }

// Rate reads the sampling rate.
func (r *DropRing) Rate() int64 { return r.rate.Load() }

// Offer is the per-drop admission check: it refills the token bucket
// from the clock and takes one token. False — the common answer under a
// storm — costs a couple of atomic loads and never touches the ring.
func (r *DropRing) Offer() bool {
	rate := r.rate.Load()
	if rate <= 0 {
		r.skipped.Add(1)
		return false
	}
	now := dropNanos()
	last := r.last.Load()
	if elapsed := now - last; elapsed > 0 {
		// Integer refill: under one token's worth of elapsed time adds 0
		// and leaves the refill clock alone, so slow trickles still
		// accumulate credit instead of rounding to zero forever.
		if add := elapsed * rate / int64(time.Second); add > 0 && r.last.CompareAndSwap(last, now) {
			for {
				t := r.tokens.Load()
				nt := t + add
				if nt > r.burst {
					nt = r.burst
				}
				if t >= nt || r.tokens.CompareAndSwap(t, nt) {
					break
				}
			}
		}
	}
	for {
		t := r.tokens.Load()
		if t <= 0 {
			r.skipped.Add(1)
			return false
		}
		if r.tokens.CompareAndSwap(t, t-1) {
			return true
		}
	}
}

// Capture records one sampled drop (call only after Offer returned
// true): the drop point, the epoch, and the frame's first DropHdrBytes
// bytes. Zero allocations; the frame is copied, never retained.
func (r *DropRing) Capture(reason verdict.DropReason, tsp, inPort, outPort int, epoch uint64, data []byte) {
	seq := r.seq.Add(1)
	r.sampled.Add(1)
	r.mu.Lock()
	s := &r.ring[r.pos]
	s.seq = seq
	s.nanos = dropNanos()
	s.reason = reason
	s.tsp = int32(tsp)
	s.inPort = int32(inPort)
	s.outPort = int32(outPort)
	s.epoch = epoch
	s.size = int32(len(data))
	s.hdrLen = int32(copy(s.hdr[:], data))
	r.pos++
	if r.pos == len(r.ring) {
		r.pos = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Dump copies up to max records out of the ring, newest first (max <= 0
// means all).
func (r *DropRing) Dump(max int) []DropRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.pos
	if r.full {
		n = len(r.ring)
	}
	if max <= 0 || max > n {
		max = n
	}
	out := make([]DropRecord, 0, max)
	for i := 1; i <= max; i++ {
		idx := r.pos - i
		if idx < 0 {
			idx += len(r.ring)
		}
		s := &r.ring[idx]
		out = append(out, DropRecord{
			Seq:     s.seq,
			Nanos:   s.nanos,
			Reason:  s.reason.String(),
			TSP:     int(s.tsp),
			InPort:  int(s.inPort),
			OutPort: int(s.outPort),
			Epoch:   s.epoch,
			Bytes:   int(s.size),
			Hdr:     append([]byte(nil), s.hdr[:s.hdrLen]...),
		})
	}
	return out
}

// Len reports how many records are buffered.
func (r *DropRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.ring)
	}
	return r.pos
}

// Stats reports how many drops were captured and how many were seen but
// not sampled (metrics: ipsa_drop_samples_total{outcome}).
func (r *DropRing) Stats() (sampled, skipped uint64) {
	return r.sampled.Load(), r.skipped.Load()
}

// Register mounts the drop-capture endpoint on mux:
//
//	/drops  sampled drop records, newest first (?max=N truncates)
//
// Responses are JSON arrays. Nil-safe: a nil ring serves empty arrays so
// callers can mount unconditionally.
func (r *DropRing) Register(mux *http.ServeMux) {
	mux.HandleFunc("/drops", func(w http.ResponseWriter, req *http.Request) {
		max, _ := strconv.Atoi(req.URL.Query().Get("max"))
		// Empty results stay non-nil so clients always see a JSON
		// array, never null.
		var v any = []struct{}{}
		if r != nil {
			if recs := r.Dump(max); len(recs) > 0 {
				v = recs
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	})
}
