package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Handler serves the registry in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Server is the scrape endpoint: /metrics in Prometheus text format,
// /traces and /events as JSON when their sources are attached, and the
// net/http/pprof profile handlers under /debug/pprof/.
type Server struct {
	srv  *http.Server
	addr string
}

// NewServeMux assembles the switch's debug/scrape mux: reg at /metrics,
// tracer (optional, may be nil) at /traces, events (optional, may be nil)
// at /events, and the pprof handlers under /debug/pprof/. The pprof
// handlers are mounted explicitly — this mux is private, so the
// net/http/pprof DefaultServeMux registrations would not be reachable —
// making CPU/heap profiles of the hot path one curl away:
//
//	curl -o cpu.pb.gz http://<addr>/debug/pprof/profile?seconds=10
//	curl -o heap.pb.gz http://<addr>/debug/pprof/heap
//
// Both ipbm and pisabm build their endpoint from this one helper; callers
// mount additional routes (the health layer's /health, /healthz, /readyz)
// on the returned mux before serving it.
func NewServeMux(reg *Registry, tracer *Tracer, events *EventLog) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	if tracer != nil {
		mux.HandleFunc("/traces", func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(tracer.Dump(0))
		})
	}
	if events != nil {
		mux.HandleFunc("/events", func(w http.ResponseWriter, req *http.Request) {
			max := 0
			if v := req.URL.Query().Get("max"); v != "" {
				if n, err := strconv.Atoi(v); err == nil && n > 0 {
					max = n
				}
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(events.Dump(max))
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeMux binds addr (":0" picks an ephemeral port) and serves mux on
// it. It returns once the listener is bound.
func ServeMux(addr string, mux *http.ServeMux) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	s := &Server{srv: &http.Server{Handler: mux}, addr: ln.Addr().String()}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Serve is NewServeMux + ServeMux for callers that need no extra routes.
func Serve(addr string, reg *Registry, tracer *Tracer, events *EventLog) (*Server, error) {
	return ServeMux(addr, NewServeMux(reg, tracer, events))
}

// Addr reports the bound address.
func (s *Server) Addr() string { return s.addr }

// Close stops the endpoint.
func (s *Server) Close() error { return s.srv.Close() }
