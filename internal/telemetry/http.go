package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
)

// Handler serves the registry in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Server is the scrape endpoint: /metrics in Prometheus text format and,
// when a tracer is attached, /traces as JSON.
type Server struct {
	srv  *http.Server
	addr string
}

// Serve starts an HTTP scrape endpoint on addr (":0" picks an ephemeral
// port) exposing reg at /metrics and tracer (optional, may be nil) at
// /traces. It returns once the listener is bound.
func Serve(addr string, reg *Registry, tracer *Tracer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	if tracer != nil {
		mux.HandleFunc("/traces", func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(tracer.Dump(0))
		})
	}
	s := &Server{srv: &http.Server{Handler: mux}, addr: ln.Addr().String()}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr reports the bound address.
func (s *Server) Addr() string { return s.addr }

// Close stops the endpoint.
func (s *Server) Close() error { return s.srv.Close() }
