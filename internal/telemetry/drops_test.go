package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"ipsa/internal/verdict"
)

func TestDropRingCaptureAndDump(t *testing.T) {
	r := NewDropRing(4, 1000, 1000)
	frame := make([]byte, 100)
	for i := range frame {
		frame[i] = byte(i)
	}
	for i := 0; i < 6; i++ {
		if !r.Offer() {
			t.Fatalf("offer %d rejected with a full bucket", i)
		}
		r.Capture(verdict.ReasonACL, i, 1, 3, uint64(10+i), frame)
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("len = %d, want ring size 4", got)
	}
	recs := r.Dump(0)
	if len(recs) != 4 {
		t.Fatalf("dump returned %d records, want 4", len(recs))
	}
	// Newest first: the sixth capture leads, seq strictly descending.
	for i, rec := range recs {
		if want := uint64(6 - i); rec.Seq != want {
			t.Errorf("recs[%d].Seq = %d, want %d", i, rec.Seq, want)
		}
	}
	top := recs[0]
	if top.Reason != verdict.StrReasonACL || top.TSP != 5 || top.InPort != 1 || top.OutPort != 3 || top.Epoch != 15 {
		t.Errorf("top record = %+v", top)
	}
	if top.Bytes != len(frame) || len(top.Hdr) != DropHdrBytes {
		t.Errorf("capture kept %d of %d bytes, hdr %d", top.Bytes, len(frame), len(top.Hdr))
	}
	for i, b := range top.Hdr {
		if b != byte(i) {
			t.Fatalf("hdr[%d] = %#x, want %#x", i, b, byte(i))
		}
	}
	// Dump must return copies: mutating a dumped header cannot reach the
	// ring slot.
	recs[0].Hdr[0] = 0xFF
	if again := r.Dump(1); again[0].Hdr[0] == 0xFF {
		t.Error("dumped header aliases the ring slot")
	}
	if got := r.Dump(2); len(got) != 2 || got[0].Seq != 6 {
		t.Errorf("dump(2) = %d records starting at seq %d", len(got), got[0].Seq)
	}
	sampled, _ := r.Stats()
	if sampled != 6 {
		t.Errorf("sampled = %d, want 6", sampled)
	}
}

func TestDropRingTokenBucket(t *testing.T) {
	// rate 1/s with burst 3: the first three offers pass on the initial
	// bucket, the rest fail without a clock advance.
	r := NewDropRing(8, 1, 3)
	passed := 0
	for i := 0; i < 10; i++ {
		if r.Offer() {
			passed++
		}
	}
	if passed != 3 {
		t.Fatalf("%d offers passed, want burst 3", passed)
	}
	if _, skipped := r.Stats(); skipped != 7 {
		t.Errorf("skipped = %d, want 7", skipped)
	}
	// Disabled ring: every offer refuses and counts as skipped.
	r.SetRate(0)
	if r.Offer() {
		t.Error("offer passed on a disabled ring")
	}
	// Re-enable with a huge rate: the next offer refills from the clock.
	r.SetRate(1 << 30)
	if !r.Offer() {
		t.Error("offer refused after re-enable with credit available")
	}
}

func TestDropRingConcurrent(t *testing.T) {
	r := NewDropRing(32, 1<<40, 1<<40)
	frame := []byte{0xde, 0xad, 0xbe, 0xef}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if r.Offer() {
					r.Capture(verdict.ReasonTM, -1, w, 0, 0, frame)
				}
				if i%16 == 0 {
					r.Dump(8)
					r.Len()
					r.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Len(); got != 32 {
		t.Fatalf("len = %d after 2000 captures into 32 slots", got)
	}
	// Sequences are unique even under contention: the newest Dump must be
	// strictly descending.
	recs := r.Dump(0)
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq >= recs[i-1].Seq {
			t.Fatalf("dump not strictly newest-first: seq %d then %d", recs[i-1].Seq, recs[i].Seq)
		}
	}
}

func TestDropRingHTTP(t *testing.T) {
	r := NewDropRing(8, 1000, 1000)
	mux := http.NewServeMux()
	r.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) []DropRecord {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		var recs []DropRecord
		if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		return recs
	}

	if recs := get("/drops"); len(recs) != 0 {
		t.Fatalf("empty ring served %d records", len(recs))
	}
	for i := 0; i < 3; i++ {
		if !r.Offer() {
			t.Fatal("offer refused")
		}
		r.Capture(verdict.ReasonParse, -1, 2, -1, 0, []byte{1, 2, 3})
	}
	recs := get("/drops")
	if len(recs) != 3 || recs[0].Seq != 3 || recs[0].Reason != verdict.StrReasonParse {
		t.Fatalf("served %+v", recs)
	}
	if recs := get("/drops?max=1"); len(recs) != 1 || recs[0].Seq != 3 {
		t.Fatalf("max=1 served %+v", recs)
	}

	// A nil ring mounts and serves empty arrays instead of crashing.
	nilMux := http.NewServeMux()
	var nilRing *DropRing
	nilRing.Register(nilMux)
	nilSrv := httptest.NewServer(nilMux)
	defer nilSrv.Close()
	resp, err := http.Get(nilSrv.URL + "/drops")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if string(raw) == "null" {
		t.Error("nil ring served null, want an empty array")
	}
}
