package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pkts_total", L("port", "1"))
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	// Get-or-create returns the same handle for the same series.
	if r.Counter("pkts_total", L("port", "1")) != c {
		t.Fatal("same series returned a different handle")
	}
	if r.Counter("pkts_total", L("port", "2")) == c {
		t.Fatal("different labels shared a handle")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.ObserveNanos(0)    // bucket 0
	h.ObserveNanos(1)    // bucket 1 [1,2)
	h.ObserveNanos(1023) // bucket 10 [512,1024)
	h.ObserveNanos(1024) // bucket 11 [1024,2048)
	h.ObserveNanos(1 << 62)
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	snap := h.Snapshot()
	for i, want := range map[int]uint64{0: 1, 1: 1, 10: 1, 11: 1, HistBuckets - 1: 1} {
		if snap[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, snap[i], want)
		}
	}
	if got := h.SumNanos(); got != 1+1023+1024+(1<<62) {
		t.Errorf("sum = %d", got)
	}
}

func TestSampler(t *testing.T) {
	s := NewSampler(0)
	for i := 0; i < 100; i++ {
		if s.Hit() {
			t.Fatal("disabled sampler fired")
		}
	}
	s.SetInterval(4)
	hits := 0
	for i := 0; i < 100; i++ {
		if s.Hit() {
			hits++
		}
	}
	if hits != 25 {
		t.Fatalf("1-in-4 sampler hit %d/100", hits)
	}
}

func TestGatherAndCollectors(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Gauge("a_gauge").Set(-1)
	r.AddCollector(func(emit func(MetricPoint)) {
		emit(MetricPoint{Name: "c_from_collector", Kind: "gauge", Value: 9})
	})
	pts := r.Gather()
	if len(pts) != 3 {
		t.Fatalf("gathered %d points", len(pts))
	}
	// Sorted by name.
	names := []string{pts[0].Name, pts[1].Name, pts[2].Name}
	if names[0] != "a_gauge" || names[1] != "b_total" || names[2] != "c_from_collector" {
		t.Fatalf("order: %v", names)
	}
}

func TestUnregister(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", L("table", "t1"))
	r.Counter("x_total", L("table", "t2"))
	r.Unregister("x_total", L("table", "t1"))
	pts := r.Gather()
	if len(pts) != 1 || pts[0].Labels[0].Value != "t2" {
		t.Fatalf("after unregister: %+v", pts)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("ipsa_rx_total", L("port", "0")).Add(3)
	r.Counter("ipsa_rx_total", L("port", "1")).Add(5)
	r.Histogram("ipsa_tsp_latency_ns", L("tsp", "0")).ObserveNanos(1500)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ipsa_rx_total counter",
		`ipsa_rx_total{port="0"} 3`,
		`ipsa_rx_total{port="1"} 5`,
		"# TYPE ipsa_tsp_latency_ns histogram",
		`ipsa_tsp_latency_ns_bucket{tsp="0",le="+Inf"} 1`,
		`ipsa_tsp_latency_ns_count{tsp="0"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// One TYPE line per family even with several series.
	if strings.Count(out, "# TYPE ipsa_rx_total") != 1 {
		t.Errorf("duplicate TYPE lines:\n%s", out)
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(4, 1) // sample everything
	for i := 0; i < 6; i++ {
		rec := tr.Sample()
		if rec == nil {
			t.Fatal("sample-every-packet returned nil")
		}
		rec.InPort = i
		rec.AddStage(StageEvent{Stage: fmt.Sprintf("s%d", i)})
		tr.Commit(rec)
	}
	if tr.Len() != 4 {
		t.Fatalf("ring holds %d", tr.Len())
	}
	dump := tr.Dump(0)
	if len(dump) != 4 {
		t.Fatalf("dump = %d records", len(dump))
	}
	// Newest first: in-ports 5,4,3,2.
	for i, want := range []int{5, 4, 3, 2} {
		if dump[i].InPort != want {
			t.Fatalf("dump[%d].InPort = %d, want %d", i, dump[i].InPort, want)
		}
	}
	if got := tr.Dump(2); len(got) != 2 || got[0].InPort != 5 {
		t.Fatalf("bounded dump: %+v", got)
	}
	// Disabled tracer never samples.
	tr.SetInterval(0)
	if tr.Sample() != nil {
		t.Fatal("disabled tracer sampled")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64, 2)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if rec := tr.Sample(); rec != nil {
					rec.AddStage(StageEvent{Stage: "s"})
					tr.Commit(rec)
				}
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 64 {
		t.Fatalf("ring holds %d", tr.Len())
	}
}

func TestHTTPServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total").Inc()
	tr := NewTracer(8, 1)
	rec := tr.Sample()
	tr.Commit(rec)
	s, err := Serve("127.0.0.1:0", r, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "up_total 1") {
		t.Fatalf("scrape: %s", body)
	}
	resp, err = http.Get("http://" + s.Addr() + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"seq"`) {
		t.Fatalf("traces: %s", body)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.ObserveNanos(int64(i))
	}
}

func BenchmarkSamplerMiss(b *testing.B) {
	s := NewSampler(1 << 20)
	for i := 0; i < b.N; i++ {
		s.Hit()
	}
}
