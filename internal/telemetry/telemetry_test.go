package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pkts_total", L("port", "1"))
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	// Get-or-create returns the same handle for the same series.
	if r.Counter("pkts_total", L("port", "1")) != c {
		t.Fatal("same series returned a different handle")
	}
	if r.Counter("pkts_total", L("port", "2")) == c {
		t.Fatal("different labels shared a handle")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.ObserveNanos(0)    // bucket 0
	h.ObserveNanos(1)    // bucket 1 [1,2)
	h.ObserveNanos(1023) // bucket 10 [512,1024)
	h.ObserveNanos(1024) // bucket 11 [1024,2048)
	h.ObserveNanos(1 << 62)
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	snap := h.Snapshot()
	for i, want := range map[int]uint64{0: 1, 1: 1, 10: 1, 11: 1, HistBuckets - 1: 1} {
		if snap[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, snap[i], want)
		}
	}
	if got := h.SumNanos(); got != 1+1023+1024+(1<<62) {
		t.Errorf("sum = %d", got)
	}
}

func TestSampler(t *testing.T) {
	s := NewSampler(0)
	for i := 0; i < 100; i++ {
		if s.Hit() {
			t.Fatal("disabled sampler fired")
		}
	}
	s.SetInterval(4)
	hits := 0
	for i := 0; i < 100; i++ {
		if s.Hit() {
			hits++
		}
	}
	if hits != 25 {
		t.Fatalf("1-in-4 sampler hit %d/100", hits)
	}
}

func TestGatherAndCollectors(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Gauge("a_gauge").Set(-1)
	r.AddCollector(func(emit func(MetricPoint)) {
		emit(MetricPoint{Name: "c_from_collector", Kind: "gauge", Value: 9})
	})
	pts := r.Gather()
	if len(pts) != 3 {
		t.Fatalf("gathered %d points", len(pts))
	}
	// Sorted by name.
	names := []string{pts[0].Name, pts[1].Name, pts[2].Name}
	if names[0] != "a_gauge" || names[1] != "b_total" || names[2] != "c_from_collector" {
		t.Fatalf("order: %v", names)
	}
}

func TestUnregister(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", L("table", "t1"))
	r.Counter("x_total", L("table", "t2"))
	r.Unregister("x_total", L("table", "t1"))
	pts := r.Gather()
	if len(pts) != 1 || pts[0].Labels[0].Value != "t2" {
		t.Fatalf("after unregister: %+v", pts)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("ipsa_rx_total", L("port", "0")).Add(3)
	r.Counter("ipsa_rx_total", L("port", "1")).Add(5)
	r.Histogram("ipsa_tsp_latency_ns", L("tsp", "0")).ObserveNanos(1500)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ipsa_rx_total counter",
		`ipsa_rx_total{port="0"} 3`,
		`ipsa_rx_total{port="1"} 5`,
		"# TYPE ipsa_tsp_latency_ns histogram",
		`ipsa_tsp_latency_ns_bucket{tsp="0",le="+Inf"} 1`,
		`ipsa_tsp_latency_ns_count{tsp="0"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// One TYPE line per family even with several series.
	if strings.Count(out, "# TYPE ipsa_rx_total") != 1 {
		t.Errorf("duplicate TYPE lines:\n%s", out)
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(4, 1) // sample everything
	for i := 0; i < 6; i++ {
		rec := tr.Sample()
		if rec == nil {
			t.Fatal("sample-every-packet returned nil")
		}
		rec.InPort = i
		rec.AddStage(StageEvent{Stage: fmt.Sprintf("s%d", i)})
		tr.Commit(rec)
	}
	if tr.Len() != 4 {
		t.Fatalf("ring holds %d", tr.Len())
	}
	dump := tr.Dump(0)
	if len(dump) != 4 {
		t.Fatalf("dump = %d records", len(dump))
	}
	// Newest first: in-ports 5,4,3,2.
	for i, want := range []int{5, 4, 3, 2} {
		if dump[i].InPort != want {
			t.Fatalf("dump[%d].InPort = %d, want %d", i, dump[i].InPort, want)
		}
	}
	if got := tr.Dump(2); len(got) != 2 || got[0].InPort != 5 {
		t.Fatalf("bounded dump: %+v", got)
	}
	// Disabled tracer never samples.
	tr.SetInterval(0)
	if tr.Sample() != nil {
		t.Fatal("disabled tracer sampled")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64, 2)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if rec := tr.Sample(); rec != nil {
					rec.AddStage(StageEvent{Stage: "s"})
					tr.Commit(rec)
				}
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 64 {
		t.Fatalf("ring holds %d", tr.Len())
	}
}

func TestHTTPServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total").Inc()
	tr := NewTracer(8, 1)
	rec := tr.Sample()
	tr.Commit(rec)
	ev := NewEventLog(16)
	ev.Append(Event{Kind: "apply_full", ConfigHash: "abc123"})
	s, err := Serve("127.0.0.1:0", r, tr, ev)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "up_total 1") {
		t.Fatalf("scrape: %s", body)
	}
	resp, err = http.Get("http://" + s.Addr() + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"seq"`) {
		t.Fatalf("traces: %s", body)
	}
	resp, err = http.Get("http://" + s.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"apply_full"`) || !strings.Contains(string(body), "abc123") {
		t.Fatalf("events: %s", body)
	}
	// pprof is mounted on the same mux.
	resp, err = http.Get("http://" + s.Addr() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline status %d", resp.StatusCode)
	}
}

// Regression: Unregister followed by re-registering the same series key
// must yield a fresh series — Gather must not resurrect the old points,
// and observations through a stale pre-unregister handle must not leak
// into the new series.
func TestUnregisterReuseNoResurrection(t *testing.T) {
	r := NewRegistry()
	key := []Label{L("tsp", "3")}
	old := r.Histogram("lat_seconds", key...)
	old.ObserveNanos(1000)
	old.ObserveNanos(2000)
	r.Unregister("lat_seconds", key...)
	if pts := r.Gather(); len(pts) != 0 {
		t.Fatalf("after unregister, gather = %+v", pts)
	}

	fresh := r.Histogram("lat_seconds", key...)
	if fresh == old {
		t.Fatal("re-registering returned the unregistered handle")
	}
	old.ObserveNanos(9999) // stale handle writes must stay detached
	pts := r.Gather()
	if len(pts) != 1 {
		t.Fatalf("gather = %d points, want 1", len(pts))
	}
	if pts[0].Count != 0 {
		t.Fatalf("resurrected stale points: count = %d", pts[0].Count)
	}

	// Cycle again and check the export order holds exactly one slot.
	r.Unregister("lat_seconds", key...)
	r.Unregister("lat_seconds", key...) // double-unregister is a no-op
	r.Histogram("lat_seconds", key...).ObserveNanos(500)
	pts = r.Gather()
	if len(pts) != 1 || pts[0].Count != 1 {
		t.Fatalf("after cycle: %+v", pts)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	// 100 observations uniformly inside [1024, 2048): all in one bucket,
	// so the interpolated p50 sits near the bucket middle.
	for i := 0; i < 100; i++ {
		h.ObserveNanos(1024 + int64(i*10))
	}
	p50 := h.Quantile(0.5)
	if p50 < 1024 || p50 >= 2048 {
		t.Fatalf("p50 = %g outside the only occupied bucket", p50)
	}
	// Quantiles are monotone in q.
	if !(h.Quantile(0.9) >= p50 && h.Quantile(0.99) >= h.Quantile(0.9)) {
		t.Fatalf("quantiles not monotone: p50=%g p90=%g p99=%g",
			p50, h.Quantile(0.9), h.Quantile(0.99))
	}
	// Skewed distribution: 99 fast, 1 slow — p50 stays in the fast
	// bucket, p99 must not.
	var h2 Histogram
	for i := 0; i < 99; i++ {
		h2.ObserveNanos(100)
	}
	h2.ObserveNanos(1 << 20)
	if p := h2.Quantile(0.5); p >= 256 {
		t.Fatalf("p50 = %g, want fast-bucket value", p)
	}
	if p := h2.Quantile(0.995); p < 1<<19 {
		t.Fatalf("p99.5 = %g, want slow-bucket value", p)
	}
}

func TestGatherExportsQuantiles(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat_seconds").ObserveNanos(1500)
	pts := r.Gather()
	if len(pts) != 1 || len(pts[0].Quantiles) != 3 {
		t.Fatalf("quantiles missing: %+v", pts)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"lat_seconds_p50", "lat_seconds_p90", "lat_seconds_p99"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("missing %s in:\n%s", want, b.String())
		}
	}
}

func TestEventLog(t *testing.T) {
	l := NewEventLog(16)
	for i := 0; i < 20; i++ {
		l.Append(Event{Kind: "apply_full", TSPsWritten: i})
	}
	if l.Len() != 16 {
		t.Fatalf("ring holds %d", l.Len())
	}
	dump := l.Dump(0)
	if len(dump) != 16 {
		t.Fatalf("dump = %d", len(dump))
	}
	// Newest first, sequence numbers strictly decreasing.
	if dump[0].Seq != 20 || dump[0].TSPsWritten != 19 {
		t.Fatalf("head = %+v", dump[0])
	}
	for i := 1; i < len(dump); i++ {
		if dump[i].Seq != dump[i-1].Seq-1 {
			t.Fatalf("sequence gap at %d: %+v", i, dump[i])
		}
	}
	if dump[0].TimeNanos == 0 {
		t.Fatal("TimeNanos not stamped")
	}
	if got := l.Dump(3); len(got) != 3 || got[0].Seq != 20 {
		t.Fatalf("bounded dump: %+v", got)
	}
	// Nil log is inert.
	var nilLog *EventLog
	nilLog.Append(Event{})
	if nilLog.Len() != 0 || nilLog.Dump(0) != nil {
		t.Fatal("nil EventLog not inert")
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.ObserveNanos(int64(i))
	}
}

func BenchmarkSamplerMiss(b *testing.B) {
	s := NewSampler(1 << 20)
	for i := 0; i < b.N; i++ {
		s.Hit()
	}
}
