// Package telemetry is the switch-wide observability substrate: a
// lock-cheap registry of atomic counters, gauges and fixed-bucket latency
// histograms, a sampled per-packet flight recorder, and exporters
// (Prometheus text format over HTTP, structured dumps over the control
// channel). The hot-path contract is that metric handles are resolved
// once — at registration or ApplyConfig time — so updating a metric is a
// single atomic operation with no allocation and no map lookups.
//
// The package depends only on the standard library so every layer of the
// switch (netio, tsp, pipeline, ipbm, ctrlplane) can import it freely.
package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing value. The zero value is ready to
// use, but hot-path users should hold a *Counter obtained from a Registry
// so the value is exported.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down (queue depths, active TSPs).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// HistBuckets is the fixed bucket count of every Histogram: bucket i
// covers durations in [2^(i-1), 2^i) nanoseconds (bucket 0 is [0,1ns)),
// so the top bucket's lower bound is ~34 seconds — far beyond any
// per-stage latency this switch produces.
const HistBuckets = 36

// Histogram is a fixed-bucket latency histogram with power-of-two
// nanosecond buckets. Observing is three atomic adds and no allocation.
type Histogram struct {
	buckets [HistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
}

// bucketOf maps a nanosecond duration to its bucket index: bucket i holds
// durations whose highest set bit is i-1 (1ns → bucket 1, 1024ns → 11).
func bucketOf(nanos int64) int {
	if nanos <= 0 {
		return 0
	}
	i := bits.Len64(uint64(nanos))
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	return i
}

// ObserveNanos records one duration in nanoseconds.
func (h *Histogram) ObserveNanos(nanos int64) {
	h.buckets[bucketOf(nanos)].Add(1)
	h.count.Add(1)
	h.sum.Add(nanos)
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// SumNanos reports the sum of all observations.
func (h *Histogram) SumNanos() int64 { return h.sum.Load() }

// Snapshot copies the raw (non-cumulative) bucket counts.
func (h *Histogram) Snapshot() [HistBuckets]uint64 {
	var out [HistBuckets]uint64
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile estimates the q-th quantile (0 < q < 1) of the observed
// distribution in nanoseconds by linear interpolation inside the bucket
// where the cumulative count crosses q*count. Power-of-two buckets make
// this coarse (worst case a factor of 2 within the target bucket), which
// is the usual tradeoff for allocation-free fixed-bucket observation.
// Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	snap := h.Snapshot()
	var total uint64
	for _, c := range snap {
		total += c
	}
	return quantileFromBuckets(snap[:], total, q)
}

// quantileFromBuckets is the interpolation shared by the live Histogram
// and gathered MetricPoint snapshots.
func quantileFromBuckets(buckets []uint64, total uint64, q float64) float64 {
	if total == 0 || q <= 0 || q >= 1 {
		return 0
	}
	target := q * float64(total)
	var cum float64
	for i, c := range buckets {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < target {
			continue
		}
		// Bucket i spans [lower, upper) nanos; interpolate by rank.
		lower := float64(0)
		if i > 0 {
			lower = float64(uint64(1) << uint(i-1))
		}
		upper := float64(BucketUpperNanos(i))
		frac := (target - prev) / float64(c)
		return lower + frac*(upper-lower)
	}
	return float64(BucketUpperNanos(len(buckets) - 1))
}

// BucketUpperNanos returns bucket i's exclusive upper bound in
// nanoseconds (the Prometheus "le" value uses this, inclusive semantics
// being close enough at power-of-two granularity).
func BucketUpperNanos(i int) uint64 {
	if i <= 0 {
		return 1
	}
	if i >= HistBuckets-1 {
		return 1 << 62 // effectively +Inf's finite stand-in
	}
	return 1 << uint(i)
}

// Sampler makes cheap 1-in-N decisions: the steady-state cost of a
// disabled or not-sampled event is one atomic increment. Interval 0
// disables sampling entirely.
type Sampler struct {
	interval atomic.Uint64
	ctr      atomic.Uint64
}

// NewSampler builds a sampler firing every interval-th call (0 = never).
func NewSampler(interval uint64) *Sampler {
	s := &Sampler{}
	s.interval.Store(interval)
	return s
}

// SetInterval changes the sampling interval at runtime (0 disables).
func (s *Sampler) SetInterval(n uint64) { s.interval.Store(n) }

// Interval reads the current interval.
func (s *Sampler) Interval() uint64 { return s.interval.Load() }

// Hit reports whether this call is sampled. Power-of-two intervals (the
// defaults) avoid the divide on the per-packet path.
func (s *Sampler) Hit() bool {
	n := s.interval.Load()
	if n == 0 {
		return false
	}
	c := s.ctr.Add(1)
	if n&(n-1) == 0 {
		return c&(n-1) == 0
	}
	return c%n == 0
}
