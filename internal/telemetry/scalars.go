package telemetry

// Stable read handles over the registered series, for samplers that
// snapshot the whole registry on a ticker (the health layer's time-series
// ring). Gather() allocates freely — maps, sorting, collector output — so
// it cannot run once a second on a switch whose benchmark gate demands a
// quiet heap. Handles fix that: enumeration happens only when
// Generation() moves, and each Read() is one or a few atomic loads.

// ScalarHandle reads one registered counter, striped counter or gauge.
type ScalarHandle struct {
	Key    string // canonical series key (name + labels)
	Name   string
	Labels []Label
	Kind   string // "counter" or "gauge"
	read   func() float64
}

// Read samples the series. Lock-free; safe from any goroutine.
func (h *ScalarHandle) Read() float64 { return h.read() }

// HistogramHandle reads one registered histogram.
type HistogramHandle struct {
	Key    string
	Name   string
	Labels []Label
	Hist   *Histogram
}

// Generation reports a version that moves on every register/unregister.
// Samplers cache the Scalars()/HistogramHandles() enumeration and refresh
// it only when this value changes.
func (r *Registry) Generation() uint64 { return r.gen.Load() }

// SeriesKey exposes the registry's canonical name+labels key so external
// samplers can correlate their own columns with registered series.
func SeriesKey(name string, labels []Label) string { return seriesKey(name, labels) }

// Scalars returns a read handle for every registered counter, striped
// counter and gauge, in registration order. Striped counters fold to one
// value, matching their exported form.
func (r *Registry) Scalars() []ScalarHandle {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ScalarHandle, 0, len(r.order))
	for _, k := range r.order {
		e, ok := r.entries[k]
		if !ok {
			continue
		}
		h := ScalarHandle{Key: k, Name: e.name, Labels: e.labels}
		switch e.kind {
		case kindCounter:
			c := e.ctr
			h.Kind = "counter"
			h.read = func() float64 { return float64(c.Value()) }
		case kindStriped:
			c := e.striped
			h.Kind = "counter"
			h.read = func() float64 { return float64(c.Value()) }
		case kindGauge:
			g := e.gauge
			h.Kind = "gauge"
			h.read = func() float64 { return float64(g.Value()) }
		default:
			continue
		}
		out = append(out, h)
	}
	return out
}

// HistogramHandles returns a handle for every registered histogram, in
// registration order.
func (r *Registry) HistogramHandles() []HistogramHandle {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]HistogramHandle, 0, 4)
	for _, k := range r.order {
		e, ok := r.entries[k]
		if !ok || e.kind != kindHistogram {
			continue
		}
		out = append(out, HistogramHandle{Key: k, Name: e.name, Labels: e.labels, Hist: e.hist})
	}
	return out
}

// WindowQuantile estimates quantile q from a (typically windowed delta)
// bucket vector with total observations, using the same bucket
// interpolation as the exported histogram quantiles.
func WindowQuantile(buckets []uint64, total uint64, q float64) float64 {
	return quantileFromBuckets(buckets, total, q)
}
