package telemetry

import "sync"

// StageEvent is one step of a packet's journey: a logical stage executed
// on some TSP, the table it applied (if any) and the action arm chosen.
type StageEvent struct {
	TSP     int    `json:"tsp"`
	Stage   string `json:"stage"`
	Table   string `json:"table,omitempty"`
	Applied bool   `json:"applied"` // a table lookup happened in this stage
	Hit     bool   `json:"hit"`
	Tag     uint64 `json:"tag,omitempty"` // matched entry's action tag
	Action  string `json:"action,omitempty"`
	Default bool   `json:"default,omitempty"` // the default arm ran
}

// TraceHeader records where one parsed header landed in the packet.
type TraceHeader struct {
	Name string `json:"name"`
	Off  int    `json:"off"`
	Len  int    `json:"len"`
}

// TraceRecord is one sampled packet's flight record.
type TraceRecord struct {
	Seq     uint64 `json:"seq"`
	InPort  int    `json:"in_port"`
	OutPort int    `json:"out_port"`
	Bytes   int    `json:"bytes"`
	Verdict string `json:"verdict"` // one of verdict.Strings
	// Epoch is the program-store epoch the packet executed under (0 on
	// drain-mode switches, which have no published store) — it ties a
	// sampled packet to the exact program version that handled it across
	// hitless reconfigurations.
	Epoch   uint64        `json:"epoch,omitempty"`
	Headers []TraceHeader `json:"headers,omitempty"`
	Stages  []StageEvent  `json:"stages,omitempty"`
}

// AddStage appends one stage event; nil-safe so instrumented code can
// call through an always-present pointer field.
func (t *TraceRecord) AddStage(ev StageEvent) {
	if t == nil {
		return
	}
	t.Stages = append(t.Stages, ev)
}

// Tracer is the flight recorder: a fixed-size ring of per-packet trace
// records filled by sampling. With sampling disabled (interval 0) or on a
// non-sampled packet the cost is the Sampler's single counter increment.
type Tracer struct {
	sampler *Sampler
	seq     Counter

	mu   sync.Mutex
	ring []TraceRecord
	pos  int
	full bool
}

// NewTracer builds a flight recorder holding size records, sampling every
// interval-th packet (0 = disabled until SetInterval).
func NewTracer(size int, interval uint64) *Tracer {
	if size <= 0 {
		size = 256
	}
	return &Tracer{sampler: NewSampler(interval), ring: make([]TraceRecord, size)}
}

// SetInterval changes the sampling rate at runtime (0 disables).
func (t *Tracer) SetInterval(n uint64) { t.sampler.SetInterval(n) }

// Interval reads the sampling rate.
func (t *Tracer) Interval() uint64 { return t.sampler.Interval() }

// Sample decides whether the current packet is traced. It returns a fresh
// record to fill in, or nil (the common case) at the cost of one atomic
// increment.
func (t *Tracer) Sample() *TraceRecord {
	if !t.sampler.Hit() {
		return nil
	}
	t.seq.Inc()
	return &TraceRecord{Seq: t.seq.Value()}
}

// Commit stores a completed record in the ring, overwriting the oldest.
// Nil records (not sampled) are ignored.
func (t *Tracer) Commit(rec *TraceRecord) {
	if rec == nil {
		return
	}
	t.mu.Lock()
	t.ring[t.pos] = *rec
	t.pos++
	if t.pos == len(t.ring) {
		t.pos = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Dump copies up to max records out of the ring, newest first. max <= 0
// means all.
func (t *Tracer) Dump(max int) []TraceRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.pos
	if t.full {
		n = len(t.ring)
	}
	if max <= 0 || max > n {
		max = n
	}
	out := make([]TraceRecord, 0, max)
	for i := 1; i <= max; i++ {
		idx := t.pos - i
		if idx < 0 {
			idx += len(t.ring)
		}
		out = append(out, t.ring[idx])
	}
	return out
}

// Len reports how many records are buffered.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.ring)
	}
	return t.pos
}
