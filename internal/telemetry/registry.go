package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name dimension of a metric series.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// seriesKey canonically identifies name+labels for dedup.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('\x00')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// metricKind discriminates registry entries.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindStriped
)

// entry is one registered series.
type entry struct {
	name   string
	labels []Label
	kind   metricKind

	ctr     *Counter
	gauge   *Gauge
	hist    *Histogram
	striped *StripedCounter
}

// CollectFunc emits point-in-time samples at gather time. Collectors are
// for state that lives outside the registry (port counters, queue depths,
// per-table entry counts): cheap to read at scrape time, free on the hot
// path.
type CollectFunc func(emit func(p MetricPoint))

// Registry holds every metric series of one switch instance. Handle
// lookups (Counter/Gauge/Histogram) take a mutex and are meant for
// configuration time; the returned handles are updated lock-free.
type Registry struct {
	mu         sync.Mutex
	entries    map[string]*entry
	order      []string // registration order for stable export
	collectors []CollectFunc
	// gen moves on every register/unregister so samplers (the health
	// layer's time-series ring) can cache handle enumerations and rebuild
	// only when the series population actually changed.
	gen atomic.Uint64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

func (r *Registry) getOrCreate(name string, kind metricKind, labels []Label) *entry {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[key]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("telemetry: series %q re-registered with a different kind", key))
		}
		return e
	}
	e := &entry{name: name, labels: append([]Label(nil), labels...), kind: kind}
	switch kind {
	case kindCounter:
		e.ctr = &Counter{}
	case kindGauge:
		e.gauge = &Gauge{}
	case kindHistogram:
		e.hist = &Histogram{}
	}
	r.entries[key] = e
	r.order = append(r.order, key)
	r.gen.Add(1)
	return e
}

// Counter returns (creating on first use) the counter series name{labels}.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.getOrCreate(name, kindCounter, labels).ctr
}

// Gauge returns (creating on first use) the gauge series name{labels}.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.getOrCreate(name, kindGauge, labels).gauge
}

// Histogram returns (creating on first use) the histogram series
// name{labels}.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	return r.getOrCreate(name, kindHistogram, labels).hist
}

// StripedCounter returns (creating on first use) a striped counter series
// name{labels}: exported as one counter whose value is the fold of every
// stripe, while writers update per-stripe cells contention-free. The
// stripe count is fixed at first registration; re-registering returns the
// existing handle regardless of the stripes argument.
func (r *Registry) StripedCounter(name string, stripes int, labels ...Label) *StripedCounter {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[key]; ok {
		if e.kind != kindStriped {
			panic(fmt.Sprintf("telemetry: series %q re-registered with a different kind", key))
		}
		return e.striped
	}
	e := &entry{
		name: name, labels: append([]Label(nil), labels...),
		kind: kindStriped, striped: NewStripedCounter(stripes),
	}
	r.entries[key] = e
	r.order = append(r.order, key)
	r.gen.Add(1)
	return e.striped
}

// Unregister drops the series name{labels}, if present. Used when tables
// are recycled by a configuration patch.
func (r *Registry) Unregister(name string, labels ...Label) {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[key]; !ok {
		return
	}
	delete(r.entries, key)
	// Remove every order slot with this key, not just the first: if the
	// two ever skew (a historical register/unregister/register cycle), a
	// leftover slot would resurrect the series — as the current live
	// entry's point, exported twice, or worse as a stale one.
	kept := r.order[:0]
	for _, k := range r.order {
		if k != key {
			kept = append(kept, k)
		}
	}
	r.order = kept
	r.gen.Add(1)
}

// AddCollector attaches a scrape-time collector.
func (r *Registry) AddCollector(fn CollectFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// BucketCount is one histogram bucket in a dump: Count observations at or
// below UpperNanos (cumulative).
type BucketCount struct {
	UpperNanos uint64 `json:"upper_nanos"`
	Count      uint64 `json:"count"`
}

// MetricPoint is one exported sample, JSON-friendly for the control
// channel's metrics dump.
type MetricPoint struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Kind   string  `json:"kind"` // "counter", "gauge" or "histogram"
	Value  float64 `json:"value,omitempty"`
	// Histogram-only fields.
	Count    uint64        `json:"count,omitempty"`
	SumNanos int64         `json:"sum_nanos,omitempty"`
	Buckets  []BucketCount `json:"buckets,omitempty"`
	// Quantiles holds bucket-interpolated estimates (p50/p90/p99) in
	// nanoseconds, filled for non-empty histograms.
	Quantiles []QuantileValue `json:"quantiles,omitempty"`
}

// QuantileValue is one estimated quantile of a histogram series.
type QuantileValue struct {
	Quantile float64 `json:"quantile"`
	Nanos    float64 `json:"nanos"`
}

// exportQuantiles is the set every histogram exports.
var exportQuantiles = []float64{0.5, 0.9, 0.99}

func (e *entry) point() MetricPoint {
	p := MetricPoint{Name: e.name, Labels: e.labels}
	switch e.kind {
	case kindCounter:
		p.Kind = "counter"
		p.Value = float64(e.ctr.Value())
	case kindStriped:
		p.Kind = "counter"
		p.Value = float64(e.striped.Value())
	case kindGauge:
		p.Kind = "gauge"
		p.Value = float64(e.gauge.Value())
	case kindHistogram:
		p.Kind = "histogram"
		raw := e.hist.Snapshot()
		p.Count = e.hist.Count()
		p.SumNanos = e.hist.SumNanos()
		// Quantiles interpolate over the bucket snapshot's own total (not
		// p.Count, which is read later and can race ahead of it).
		var btotal uint64
		for _, c := range raw {
			btotal += c
		}
		for _, q := range exportQuantiles {
			if btotal == 0 {
				break
			}
			p.Quantiles = append(p.Quantiles, QuantileValue{
				Quantile: q, Nanos: quantileFromBuckets(raw[:], btotal, q),
			})
		}
		cum := uint64(0)
		for i, c := range raw {
			cum += c
			if c == 0 && i < HistBuckets-1 {
				continue // sparse export: only buckets that gained counts
			}
			p.Buckets = append(p.Buckets, BucketCount{UpperNanos: BucketUpperNanos(i), Count: cum})
		}
	}
	return p
}

// Gather snapshots every series — registered handles first (registration
// order), then collector output — sorted by name then labels so exports
// are deterministic.
func (r *Registry) Gather() []MetricPoint {
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.order))
	for _, k := range r.order {
		// Skip order slots with no live entry (unregistered series):
		// gathering through a dangling slot would panic or resurrect a
		// stale point.
		if e, ok := r.entries[k]; ok {
			entries = append(entries, e)
		}
	}
	collectors := append([]CollectFunc(nil), r.collectors...)
	r.mu.Unlock()

	var out []MetricPoint
	for _, e := range entries {
		out = append(out, e.point())
	}
	for _, fn := range collectors {
		fn(func(p MetricPoint) { out = append(out, p) })
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelsKey(out[i].Labels) < labelsKey(out[j].Labels)
	})
	return out
}

func labelsKey(ls []Label) string {
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}
