package telemetry

import (
	"sync"
	"testing"
)

// TestStripedCounterFold: per-cell increments fold into one Value.
func TestStripedCounterFold(t *testing.T) {
	c := NewStripedCounter(4)
	if c.Stripes() != 4 {
		t.Fatalf("stripes = %d", c.Stripes())
	}
	c.Cell(0).Add(3)
	c.Cell(2).Inc()
	c.Cell(3).Add(6)
	if c.Value() != 10 {
		t.Fatalf("Value = %d want 10", c.Value())
	}
	if c.CellValue(2) != 1 {
		t.Fatalf("CellValue(2) = %d", c.CellValue(2))
	}
}

// TestStripedCounterClamping: out-of-range cell access clamps rather than
// panicking (lane indices come from packet metadata, which the hot path
// must not have to validate).
func TestStripedCounterClamping(t *testing.T) {
	c := NewStripedCounter(2)
	c.Cell(-1).Inc()
	c.Cell(99).Inc()
	if c.CellValue(0) != 2 {
		t.Fatalf("clamped increments landed on cell %d values: %d,%d",
			0, c.CellValue(0), c.CellValue(1))
	}
	if c.CellValue(-5) != 0 || c.CellValue(99) != 0 {
		t.Fatal("out-of-range CellValue should read 0")
	}
	if NewStripedCounter(0).Stripes() != 1 {
		t.Fatal("zero stripes should clamp to 1")
	}
}

// TestStripedCounterConcurrent: concurrent per-stripe increments are all
// visible in the fold.
func TestStripedCounterConcurrent(t *testing.T) {
	const stripes, per = 8, 1000
	c := NewStripedCounter(stripes)
	var wg sync.WaitGroup
	for s := 0; s < stripes; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Cell(s).Inc()
			}
		}(s)
	}
	wg.Wait()
	if c.Value() != stripes*per {
		t.Fatalf("Value = %d want %d", c.Value(), stripes*per)
	}
}

// TestRegistryStripedCounter: registration is idempotent per label set,
// stripe width is fixed at first registration, and the scrape point
// exposes the folded value as an ordinary counter.
func TestRegistryStripedCounter(t *testing.T) {
	r := NewRegistry()
	a := r.StripedCounter("ipsa_test_striped_total", 4, L("verdict", "sent"))
	b := r.StripedCounter("ipsa_test_striped_total", 9, L("verdict", "sent"))
	if a != b {
		t.Fatal("same name+labels returned distinct striped counters")
	}
	a.Cell(1).Add(5)
	a.Cell(3).Add(2)
	found := false
	for _, p := range r.Gather() {
		if p.Name != "ipsa_test_striped_total" {
			continue
		}
		found = true
		if p.Kind != "counter" || p.Value != 7 {
			t.Fatalf("scrape point = %+v", p)
		}
	}
	if !found {
		t.Fatal("striped counter missing from Gather")
	}
}
