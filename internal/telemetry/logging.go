package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the process-wide structured logger from the
// -log-level/-log-format flag pair shared by the switch daemons. Every
// subsystem hangs component/shard/config-hash attributes off the logger
// it is handed, so one line of a JSON stream is enough to locate which
// switch, which lane, and which configuration produced it.
//
// level is one of debug, info, warn, error (default info); format is
// text or json (default text).
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("telemetry: unknown log level %q (debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (text|json)", format)
	}
	return slog.New(h), nil
}
