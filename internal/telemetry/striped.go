package telemetry

// StripedCounter is a Counter split into cache-line-padded per-stripe
// cells: each concurrent writer (one shard worker of the sharded
// datapath) increments its own cell, so hot-path counting never bounces
// one cache line between cores the way a single shared atomic does. The
// total is folded back together at read/scrape time, which is the only
// moment anyone needs it.
type StripedCounter struct {
	cells []stripeCell
}

// stripeCell pads one counter out to a 64-byte cache line so adjacent
// stripes never false-share.
type stripeCell struct {
	c Counter
	_ [56]byte
}

// NewStripedCounter builds a counter with the given number of stripes
// (minimum 1).
func NewStripedCounter(stripes int) *StripedCounter {
	if stripes < 1 {
		stripes = 1
	}
	return &StripedCounter{cells: make([]stripeCell, stripes)}
}

// Stripes reports the cell count.
func (s *StripedCounter) Stripes() int { return len(s.cells) }

// Cell returns stripe i's counter handle (out-of-range indexes clamp to
// stripe 0). Resolve once at configuration time; the handle updates
// lock-free like any Counter.
func (s *StripedCounter) Cell(i int) *Counter {
	if i < 0 || i >= len(s.cells) {
		i = 0
	}
	return &s.cells[i].c
}

// CellValue reads one stripe's count (per-shard telemetry export).
func (s *StripedCounter) CellValue(i int) uint64 {
	if i < 0 || i >= len(s.cells) {
		return 0
	}
	return s.cells[i].c.Value()
}

// Value folds every stripe into the total.
func (s *StripedCounter) Value() uint64 {
	var t uint64
	for i := range s.cells {
		t += s.cells[i].c.Value()
	}
	return t
}
