package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one TYPE line per metric family, histogram
// buckets as cumulative <name>_bucket{le="..."} series with _sum/_count.
// Durations are exported in seconds per Prometheus convention.
func (r *Registry) WritePrometheus(w io.Writer) error {
	points := r.Gather()
	lastFamily := ""
	for i := range points {
		p := &points[i]
		if p.Name != lastFamily {
			lastFamily = p.Name
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", p.Name, p.Kind); err != nil {
				return err
			}
		}
		if err := writePoint(w, p); err != nil {
			return err
		}
	}
	return nil
}

func writePoint(w io.Writer, p *MetricPoint) error {
	switch p.Kind {
	case "histogram":
		for _, b := range p.Buckets {
			le := formatSeconds(float64(b.UpperNanos) / 1e9)
			if b.UpperNanos >= 1<<62 {
				le = "+Inf"
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				p.Name, renderLabels(p.Labels, L("le", le)), b.Count); err != nil {
				return err
			}
		}
		// A +Inf bucket is mandatory; the top bucket is already cumulative
		// over everything, so repeat the total when it wasn't emitted.
		if len(p.Buckets) == 0 || p.Buckets[len(p.Buckets)-1].UpperNanos < 1<<62 {
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				p.Name, renderLabels(p.Labels, L("le", "+Inf")), p.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", p.Name, renderLabels(p.Labels),
			formatSeconds(float64(p.SumNanos)/1e9)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", p.Name, renderLabels(p.Labels), p.Count); err != nil {
			return err
		}
		// Bucket-interpolated quantiles as companion (untyped) families:
		// <name>_p50/_p90/_p99 in seconds. Separate names rather than a
		// summary type so the histogram family stays a plain histogram.
		for _, qv := range p.Quantiles {
			if _, err := fmt.Fprintf(w, "%s_p%d%s %s\n", p.Name, int(qv.Quantile*100),
				renderLabels(p.Labels), formatSeconds(qv.Nanos/1e9)); err != nil {
				return err
			}
		}
		return nil
	default:
		_, err := fmt.Fprintf(w, "%s%s %s\n", p.Name, renderLabels(p.Labels), formatValue(p.Value))
		return err
	}
}

// renderLabels formats {k="v",...}; empty when there are no labels.
func renderLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// formatValue renders integers without an exponent and floats compactly.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func formatSeconds(v float64) string {
	return fmt.Sprintf("%g", v)
}
