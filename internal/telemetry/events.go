package telemetry

import (
	"sync"
	"time"
)

// Event is one structured audit record of an in-situ reconfiguration:
// what was applied, how long the pipeline was held, and what the data
// plane was doing while the swap happened. The event log is what turns
// "hitless update" from an assertion into a measurement — DrainNanos and
// VerdictDeltas show exactly what traffic experienced during the apply.
type Event struct {
	Seq       uint64 `json:"seq"`
	TimeNanos int64  `json:"time_nanos"` // wall clock (UnixNano)
	// Kind is the reconfiguration flavor: apply_full, apply_diff,
	// apply_patch, int_enable, int_disable, edit_commit, edit_abort.
	Kind string `json:"kind"`
	// ConfigHash identifies the applied configuration (truncated SHA-256
	// of its serialized form); empty for events with no config payload.
	ConfigHash string `json:"config_hash,omitempty"`
	// TSPsWritten counts the TSPs whose programs were rewritten in situ.
	TSPsWritten int `json:"tsps_written,omitempty"`
	// TablesCreated/TablesDropped count storage-module changes.
	TablesCreated int `json:"tables_created,omitempty"`
	TablesDropped int `json:"tables_dropped,omitempty"`
	// DrainNanos is how long the pipeline was exclusively held (packets
	// blocked) for the swap. Hitless epoch commits never block packets and
	// record 0 here with Hitless set instead of a misleading hold time.
	DrainNanos int64 `json:"drain_nanos,omitempty"`
	// Hitless marks a reconfiguration that published a new program version
	// without draining the pipeline (epoch-versioned store).
	Hitless bool `json:"hitless,omitempty"`
	// Epoch is the program-store epoch the reconfiguration published (0
	// for drain-and-swap events, which have no versioned store).
	Epoch uint64 `json:"epoch,omitempty"`
	// StagesRecompiled/StagesReused report how much of the pipeline's
	// compiled program the structural-hash cache salvaged across epochs.
	StagesRecompiled int `json:"stages_recompiled,omitempty"`
	StagesReused     int `json:"stages_reused,omitempty"`
	// InFlight is the TM occupancy (packets parked between the ingress
	// and egress halves) at the moment of the swap.
	InFlight int `json:"in_flight,omitempty"`
	// VerdictDeltas is the change in the switch's per-verdict packet
	// counters over the apply's critical section — the direct evidence of
	// (or against) hitlessness. Only non-zero verdicts appear.
	VerdictDeltas map[string]uint64 `json:"verdict_deltas,omitempty"`
	// Detail carries kind-specific context (e.g. the patch manifest
	// summary or an error note).
	Detail string `json:"detail,omitempty"`
}

// EventLog is a bounded ring of audit events, newest overwrite oldest,
// mirroring the Tracer's flight-recorder shape. Appends happen on the
// control path only, so a mutex is fine.
type EventLog struct {
	mu   sync.Mutex
	ring []Event
	pos  int
	full bool
	seq  uint64
}

// NewEventLog builds a ring holding size events (minimum 16).
func NewEventLog(size int) *EventLog {
	if size < 16 {
		size = 16
	}
	return &EventLog{ring: make([]Event, size)}
}

// Append records ev, stamping Seq and (when unset) TimeNanos.
func (l *EventLog) Append(ev Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	ev.Seq = l.seq
	if ev.TimeNanos == 0 {
		ev.TimeNanos = time.Now().UnixNano()
	}
	l.ring[l.pos] = ev
	l.pos = (l.pos + 1) % len(l.ring)
	if l.pos == 0 {
		l.full = true
	}
}

// Len reports how many events the ring currently holds.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.full {
		return len(l.ring)
	}
	return l.pos
}

// LastSeq reports the sequence number of the newest event (0 when none).
// Allocation-free; the health monitor polls it every check to notice new
// reconfigurations without dumping the ring.
func (l *EventLog) LastSeq() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Last returns the newest event, if any.
func (l *EventLog) Last() (Event, bool) {
	if l == nil {
		return Event{}, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.seq == 0 {
		return Event{}, false
	}
	idx := (l.pos - 1 + len(l.ring)) % len(l.ring)
	return l.ring[idx], true
}

// Dump returns up to max events, newest first (0 = all retained).
func (l *EventLog) Dump(max int) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.pos
	if l.full {
		n = len(l.ring)
	}
	if max > 0 && max < n {
		n = max
	}
	out := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		idx := (l.pos - 1 - i + len(l.ring)) % len(l.ring)
		out = append(out, l.ring[idx])
	}
	return out
}
