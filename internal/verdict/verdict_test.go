package verdict

import "testing"

// TestVerdictRoundTrip pins the enum ↔ string mapping both ways: the
// telemetry layer indexes Strings by enum and flowstat recovers enums
// from strings, so a skew between the two silently misfiles packets.
func TestVerdictRoundTrip(t *testing.T) {
	for v := Forwarded; int(v) <= NumVerdicts; v++ {
		if got := Of(v.String()); got != v {
			t.Errorf("Of(%q) = %v, want %v", v.String(), got, v)
		}
	}
	for i, s := range Strings {
		if got := int(Of(s)) - 1; got != i {
			t.Errorf("Strings[%d] = %q maps back to index %d", i, s, got)
		}
	}
	if Of("nonsense") != None {
		t.Errorf("Of(nonsense) = %v, want None", Of("nonsense"))
	}
	if None.String() != "none" {
		t.Errorf("None.String() = %q", None.String())
	}
	if Verdict(200).String() != "none" {
		t.Errorf("out-of-range verdict String() = %q", Verdict(200).String())
	}
}

func TestReasonRoundTrip(t *testing.T) {
	for r := ReasonACL; int(r) <= NumReasons; r++ {
		if got := ReasonOf(r.String()); got != r {
			t.Errorf("ReasonOf(%q) = %v, want %v", r.String(), got, r)
		}
	}
	for i, s := range ReasonStrings {
		if got := int(ReasonOf(s)) - 1; got != i {
			t.Errorf("ReasonStrings[%d] = %q maps back to index %d", i, s, got)
		}
	}
	if ReasonOf("nonsense") != ReasonNone {
		t.Errorf("ReasonOf(nonsense) = %v", ReasonOf("nonsense"))
	}
}

func TestDropClassification(t *testing.T) {
	drops := map[Verdict]bool{
		Forwarded: false, Dropped: true, TMDrop: true,
		ToCPU: false, NoPort: true, ParseError: true, None: false,
	}
	for v, want := range drops {
		if v.IsDrop() != want {
			t.Errorf("%v.IsDrop() = %v, want %v", v, v.IsDrop(), want)
		}
	}
	if !ReasonACL.Expected() {
		t.Error("ReasonACL must be expected (policy, not loss)")
	}
	for _, r := range []DropReason{ReasonTM, ReasonNoPort, ReasonParse, ReasonTxFail} {
		if r.Expected() {
			t.Errorf("%v must be unexpected (loss signal)", r)
		}
	}
}
