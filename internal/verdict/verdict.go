// Package verdict is the single source of truth for packet disposition
// taxonomies: the per-packet verdict (what finally happened to a packet)
// and the drop reason (why a dropped packet died, and where). Both the
// flow accounting engine and the telemetry layer previously kept private
// copies of the verdict enum/string mapping; they now share this one.
//
// The package has no imports so every layer — pkt, telemetry, flowstat,
// dataplane, the switches — can depend on it without cycles.
package verdict

// Verdict is the compact per-packet disposition enum. The string forms
// are the label values of ipsa_packets_total{verdict=...} and the
// Verdict field of trace/flow records.
type Verdict uint8

const (
	None Verdict = iota
	Forwarded
	Dropped                       // a stage drop action (ACL-style, intentional)
	TMDrop                        // traffic-manager admission tail drop
	ToCPU                         // punted to the control plane
	NoPort                        // finished the pipeline with no valid egress port
	ParseError                    // frame could not carry the design's root header
	NumVerdicts = int(ParseError) // count of real verdicts (None excluded)
)

// Canonical verdict strings.
const (
	StrForwarded  = "forwarded"
	StrDropped    = "dropped"
	StrTMDrop     = "tm_drop"
	StrToCPU      = "to_cpu"
	StrNoPort     = "no_port"
	StrParseError = "parse_error"
)

// Strings orders the verdict strings by enum value minus one (None has
// no string); telemetry snapshots and deltas index it directly.
var Strings = [NumVerdicts]string{
	StrForwarded, StrDropped, StrTMDrop, StrToCPU, StrNoPort, StrParseError,
}

// Of maps a verdict string to the enum (None for anything unknown).
func Of(s string) Verdict {
	switch s {
	case StrForwarded:
		return Forwarded
	case StrDropped:
		return Dropped
	case StrTMDrop:
		return TMDrop
	case StrToCPU:
		return ToCPU
	case StrNoPort:
		return NoPort
	case StrParseError:
		return ParseError
	}
	return None
}

func (v Verdict) String() string {
	if v == None || int(v) > NumVerdicts {
		return "none"
	}
	return Strings[v-1]
}

// IsDrop reports whether the verdict means the packet was lost.
func (v Verdict) IsDrop() bool {
	switch v {
	case Dropped, TMDrop, NoPort, ParseError:
		return true
	}
	return false
}

// DropReason says why (and at which point) a packet died. Every dropped
// packet carries exactly one reason; the reasons are the label values of
// ipsa_drop_total{reason=...}.
type DropReason uint8

const (
	ReasonNone   DropReason          = iota
	ReasonACL                        // a stage's drop action fired (verdict "dropped")
	ReasonTM                         // TM admission tail drop (verdict "tm_drop")
	ReasonNoPort                     // no valid egress port at finish (verdict "no_port")
	ReasonParse                      // frame too short for the root header (verdict "parse_error")
	ReasonTxFail                     // egress port refused the frame after a "forwarded" verdict
	NumReasons   = int(ReasonTxFail) // count of real reasons (None excluded)
)

// Canonical reason strings.
const (
	StrReasonACL    = "acl"
	StrReasonTM     = "tm_drop"
	StrReasonNoPort = "no_port"
	StrReasonParse  = "parse_error"
	StrReasonTxFail = "tx_fail"
)

// ReasonStrings orders the reason strings by enum value minus one.
var ReasonStrings = [NumReasons]string{
	StrReasonACL, StrReasonTM, StrReasonNoPort, StrReasonParse, StrReasonTxFail,
}

// ReasonOf maps a reason string to the enum (ReasonNone when unknown).
func ReasonOf(s string) DropReason {
	switch s {
	case StrReasonACL:
		return ReasonACL
	case StrReasonTM:
		return ReasonTM
	case StrReasonNoPort:
		return ReasonNoPort
	case StrReasonParse:
		return ReasonParse
	case StrReasonTxFail:
		return ReasonTxFail
	}
	return ReasonNone
}

func (r DropReason) String() string {
	if r == ReasonNone || int(r) > NumReasons {
		return "none"
	}
	return ReasonStrings[r-1]
}

// Expected reports whether the reason is an intentional policy outcome
// (a program's drop action) rather than a loss signal. The health layer's
// drop-spike detector keys on unexpected reasons only, so a firewall
// program doing its job cannot push the switch to "degraded".
func (r DropReason) Expected() bool { return r == ReasonACL }
