module ipsa

go 1.22
